"""Experiment definitions for every evaluation artifact of the paper.

Each paper artifact gets a *trial function* (one seeded measurement) and
a *sweep driver*; the benchmarks, tests, CLI and EXPERIMENTS.md all call
these, so the numbers in the repo have exactly one source.

Artifacts
---------
* :func:`figure5_sweep`   — Figure 5: iterations vs. error percentage,
  alongside ``|k1 - k2|`` and ``k3``.
* :func:`table1_sweep`    — Table 1: systolic vs. sequential iterations
  over image sizes 128–2048, for 3.5 %-pixels and fixed-6-runs errors.
* :func:`bus_ablation_sweep` — future-work ablation: pure systolic vs.
  broadcast-bus cycles over the Figure 5 error axis.
* :func:`compaction_sweep`   — future-work ablation: cost of the final
  adjacent-run merge, systolic vs. bus.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.runner import Record, run_sweep
from repro.broadcast.bus_machine import BusXorMachine
from repro.core.compaction import (
    bus_compaction_cycles,
    count_mergeable_pairs,
    systolic_compaction_cycles,
)
from repro.core.sequential import sequential_xor
from repro.core.vectorized import VectorizedXorEngine
from repro.workloads.spec import BaseRowSpec, ErrorSpec
from repro.workloads.random_rows import generate_row_pair

__all__ = [
    "figure5_trial",
    "figure5_sweep",
    "figure5_batched_sweep",
    "table1_trial",
    "table1_sweep",
    "bus_ablation_trial",
    "bus_ablation_sweep",
    "compaction_trial",
    "compaction_sweep",
    "density_sweep",
    "PAPER_TABLE1_WIDTHS",
    "PAPER_FIGURE5_FRACTIONS",
    "PAPER_DENSITIES",
]

#: Densities for the Section 5 sensitivity claim ("varied only slightly
#: over different densities").
PAPER_DENSITIES = (0.10, 0.20, 0.30, 0.40, 0.50)

#: Table 1's image-size axis: "ranging from 128 to 2048 pixels".
PAPER_TABLE1_WIDTHS = (128, 256, 512, 1024, 2048)

#: Figure 5's error axis (percent of pixels differing), 0→90 %.
PAPER_FIGURE5_FRACTIONS = (
    0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.10, 0.15, 0.20,
    0.25, 0.30, 0.35, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90,
)


def _make_pair(params: Mapping[str, object], seed: int):
    base = BaseRowSpec(
        width=int(params["width"]),
        run_length=(4, 20),
        density=float(params.get("density", 0.30)),
    )
    if params.get("n_error_runs") is not None:
        errors = ErrorSpec(
            run_length=(2, 6),
            n_runs=int(params["n_error_runs"]),
            fixed_length=int(params.get("error_run_length", 4)),
        )
    else:
        errors = ErrorSpec(run_length=(2, 6), fraction=float(params["error_fraction"]))
    return generate_row_pair(base, errors, seed=seed)


# --------------------------------------------------------------------- #
# Figure 5                                                                #
# --------------------------------------------------------------------- #
def figure5_trial(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """One Figure 5 measurement: the three plotted series plus context."""
    row_a, row_b, mask = _make_pair(params, seed)
    result = VectorizedXorEngine(collect_stats=False).diff(row_a, row_b)
    return {
        "iterations": float(result.iterations),
        "run_difference": float(abs(result.k1 - result.k2)),
        "k3": float(result.k3),
        "k1": float(result.k1),
        "k2": float(result.k2),
        "theorem1_bound": float(result.k1 + result.k2),
        "error_pixels": float(mask.pixel_count),
    }


def figure5_sweep(
    fractions: Sequence[float] = PAPER_FIGURE5_FRACTIONS,
    width: int = 10_000,
    repetitions: int = 10,
    seed0: int = 5,
) -> List[Record]:
    """The full Figure 5 sweep (10 000 px, 30 % density, ≈250 runs)."""
    points = [{"width": width, "error_fraction": f} for f in fractions]
    return run_sweep(figure5_trial, points, repetitions=repetitions, seed0=seed0)


def figure5_batched_sweep(
    fractions: Sequence[float] = PAPER_FIGURE5_FRACTIONS,
    width: int = 10_000,
    repetitions: int = 10,
    seed0: int = 5,
) -> List[Record]:
    """:func:`figure5_sweep` through the batched engine: the same seeded
    row pairs (identical derivation scheme), but every (point, repetition)
    trial differenced in **one** :class:`BatchedXorEngine` batch instead
    of a Python loop of per-row engines — record-for-record identical
    metrics, one engine dispatch."""
    from repro.analysis.runner import _derive_seed
    from repro.core.batched import BatchedXorEngine

    points = [{"width": width, "error_fraction": f} for f in fractions]
    metas, rows_a, rows_b = [], [], []
    for idx, params in enumerate(points):
        for rep in range(repetitions):
            seed = _derive_seed(seed0, idx, rep)
            row_a, row_b, mask = _make_pair(params, seed)
            rows_a.append(row_a)
            rows_b.append(row_b)
            metas.append((params, seed, mask))
    results = BatchedXorEngine(collect_stats=False).diff_rows(rows_a, rows_b)
    return [
        Record(
            params=dict(params),
            seed=seed,
            metrics={
                "iterations": float(result.iterations),
                "run_difference": float(abs(result.k1 - result.k2)),
                "k3": float(result.k3),
                "k1": float(result.k1),
                "k2": float(result.k2),
                "theorem1_bound": float(result.k1 + result.k2),
                "error_pixels": float(mask.pixel_count),
            },
        )
        for (params, seed, mask), result in zip(metas, results)
    ]


# --------------------------------------------------------------------- #
# Table 1                                                                 #
# --------------------------------------------------------------------- #
def table1_trial(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """One Table 1 measurement: systolic and sequential iterations."""
    row_a, row_b, _mask = _make_pair(params, seed)
    systolic = VectorizedXorEngine(collect_stats=False).diff(row_a, row_b)
    sequential = sequential_xor(row_a, row_b)
    return {
        "systolic_iterations": float(systolic.iterations),
        "sequential_iterations": float(sequential.iterations),
        "k1": float(systolic.k1),
        "k2": float(systolic.k2),
    }


def table1_sweep(
    widths: Sequence[int] = PAPER_TABLE1_WIDTHS,
    repetitions: int = 30,
    seed0: int = 11,
) -> List[Record]:
    """Both Table 1 pairings over the full size axis.

    Each record's params carry ``errors`` ∈ {"3.5%", "6 runs"} matching
    the paper's two row groups.
    """
    points: List[Dict[str, object]] = []
    for width in widths:
        points.append({"width": width, "error_fraction": 0.035, "errors": "3.5%"})
    for width in widths:
        points.append(
            {
                "width": width,
                "n_error_runs": 6,
                "error_run_length": 4,
                "errors": "6 runs",
            }
        )
    return run_sweep(table1_trial, points, repetitions=repetitions, seed0=seed0)


# --------------------------------------------------------------------- #
# Density sensitivity (Section 5's "varied only slightly" claim)          #
# --------------------------------------------------------------------- #
def density_sweep(
    densities: Sequence[float] = PAPER_DENSITIES,
    error_fraction: float = 0.05,
    width: int = 10_000,
    repetitions: int = 10,
    seed0: int = 41,
) -> List[Record]:
    """Figure 5's correlation across base-image densities.

    Section 5: "The empirical testing shows that ... the dominating
    factor was the difference between the number of runs in the two
    images.  This was true irrespective of the sizes of the images and
    varied only slightly over different densities."
    """
    points = [
        {"width": width, "error_fraction": error_fraction, "density": d}
        for d in densities
    ]
    return run_sweep(figure5_trial, points, repetitions=repetitions, seed0=seed0)


# --------------------------------------------------------------------- #
# Ablation: broadcast bus                                                 #
# --------------------------------------------------------------------- #
def bus_ablation_trial(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Pure systolic vs. bus-assisted cycles on the same input."""
    row_a, row_b, _ = _make_pair(params, seed)
    pure = VectorizedXorEngine(collect_stats=False).diff(row_a, row_b)
    bus = BusXorMachine(segmented=True).diff(row_a, row_b)
    return {
        "systolic_iterations": float(pure.iterations),
        "bus_cycles": float(bus.iterations),
        "bus_transfers": float(bus.stats.get("bus_transfers")),
        "ripple_cycles_saved": float(bus.stats.get("ripple_cycles_saved")),
        "speedup": float(pure.iterations) / max(float(bus.iterations), 1.0),
    }


def bus_ablation_sweep(
    fractions: Sequence[float] = (0.01, 0.035, 0.10, 0.20, 0.40),
    width: int = 2048,
    repetitions: int = 10,
    seed0: int = 17,
) -> List[Record]:
    points = [{"width": width, "error_fraction": f} for f in fractions]
    return run_sweep(bus_ablation_trial, points, repetitions=repetitions, seed0=seed0)


# --------------------------------------------------------------------- #
# Ablation: final compaction pass                                         #
# --------------------------------------------------------------------- #
def compaction_trial(params: Mapping[str, object], seed: int) -> Dict[str, float]:
    """Cost/benefit of the future-work adjacent-run merge."""
    row_a, row_b, _ = _make_pair(params, seed)
    engine = VectorizedXorEngine(collect_stats=False)
    result = engine.diff(row_a, row_b)
    snapshots = engine.snapshot()
    raw = result.result
    return {
        "raw_runs": float(raw.run_count),
        "canonical_runs": float(raw.canonical().run_count),
        "mergeable_pairs": float(count_mergeable_pairs(raw)),
        "systolic_compaction_cycles": float(systolic_compaction_cycles(snapshots)),
        "bus_compaction_cycles": float(bus_compaction_cycles(snapshots)),
        "xor_iterations": float(result.iterations),
    }


def compaction_sweep(
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.40),
    width: int = 2048,
    repetitions: int = 10,
    seed0: int = 23,
) -> List[Record]:
    points = [{"width": width, "error_fraction": f} for f in fractions]
    return run_sweep(compaction_trial, points, repetitions=repetitions, seed0=seed0)
