"""Result reporting: aligned text tables, markdown, CSV.

The benches print the paper's tables with these emitters and also write
CSV so EXPERIMENTS.md numbers are regenerable byte-for-byte.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

__all__ = ["format_table", "to_markdown", "to_csv", "format_value"]

Row = Mapping[str, object]


def format_value(value: object, precision: int = 2) -> str:
    """Human-friendly cell rendering (floats rounded, ints exact)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    headers: Optional[Mapping[str, str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table (right-aligned numerics)."""
    if not rows:
        return "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    head = [headers.get(c, c) if headers else c for c in cols]
    body = [[format_value(r.get(c, ""), precision) for c in cols] for r in rows]
    widths = [
        max(len(head[i]), *(len(b[i]) for b in body)) for i in range(len(cols))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(fmt(head) + "\n")
    out.write(fmt(["-" * w for w in widths]) + "\n")
    for b in body:
        out.write(fmt(b) + "\n")
    return out.getvalue().rstrip("\n")


def to_markdown(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    headers: Optional[Mapping[str, str]] = None,
    precision: int = 2,
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    head = [headers.get(c, c) if headers else c for c in cols]
    lines = [
        "| " + " | ".join(head) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for r in rows:
        lines.append(
            "| " + " | ".join(format_value(r.get(c, ""), precision) for c in cols) + " |"
        )
    return "\n".join(lines)


def to_csv(
    rows: Sequence[Row],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows as CSV (full float precision — for regeneration)."""
    if not rows:
        Path(path).write_text("", encoding="ascii")
        return
    cols = list(columns) if columns is not None else list(rows[0].keys())
    out = io.StringIO()
    out.write(",".join(cols) + "\n")
    for r in rows:
        out.write(",".join(str(r.get(c, "")) for c in cols) + "\n")
    Path(path).write_text(out.getvalue(), encoding="ascii")
