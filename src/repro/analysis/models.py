"""Analytic models of the algorithm's running time.

The paper gives three handles on the systolic iteration count:

* the proven bound ``k1 + k2`` (Theorem 1),
* the conjectured bound ``k3 + 1`` for compressed inputs (Observation),
* the empirical driver ``|k1 - k2|`` for similar images (Section 5).

This module evaluates them on measurement records and fits the linear
trends Table 1 exhibits (iterations vs. image size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.runner import Record
from repro.errors import AnalysisError

__all__ = [
    "iteration_bounds",
    "observed_bound_violations",
    "linear_fit",
    "LinearFit",
]


def iteration_bounds(k1: int, k2: int, k3_raw: int) -> Dict[str, int]:
    """All three analytic handles for one run."""
    return {
        "theorem1_bound": k1 + k2,
        "observation_bound": k3_raw + 1,
        "run_difference": abs(k1 - k2),
    }


def observed_bound_violations(
    records: Sequence[Record],
    iterations_key: str = "iterations",
    bound_key: str = "observation_bound",
) -> List[Record]:
    """Records whose measured iterations exceed the given bound.

    Theorem 1 violations indicate a simulator bug; Observation
    violations would be a counterexample to the paper's open conjecture
    (EXPERIMENTS.md reports we found none).
    """
    return [
        r
        for r in records
        if r.metrics[iterations_key] > r.metrics[bound_key]
    ]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept`` with R²."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit a line; used to verify Table 1's "grows linearly with image
    size" claims (high R², positive slope) and the flat systolic rows
    (slope ≈ 0)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2:
        raise AnalysisError("need at least two points to fit a line")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r2)
