"""Terminal line plots — regenerating Figure 5 without matplotlib.

A deliberately small scatter/line renderer: multiple named series on a
shared character grid with axis ticks.  Sufficient to eyeball the
Figure 5 shape (iterations tracking ``|k1 - k2|`` up to ~30–40 % error,
then bending toward the ``k1 + k2`` regime) straight from a bench run.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def _scale(v: float, lo: float, hi: float, span: int) -> int:
    if hi <= lo:
        return 0
    pos = (v - lo) / (hi - lo)
    return min(span - 1, max(0, int(round(pos * (span - 1)))))


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named ``(x, y)`` series on one character grid.

    Each series gets a marker from ``* o + x ...``; a legend and axis
    ranges are appended.  Empty input yields a placeholder string.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data to plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo > 0:
        y_lo = 0.0  # anchor at zero: iteration counts are magnitudes

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    y_hi_label = f"{y_hi:.0f}"
    y_lo_label = f"{y_lo:.0f}"
    margin = max(len(y_hi_label), len(y_lo_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_label.rjust(margin)
        elif i == height - 1:
            prefix = y_lo_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.2f}".ljust(width - 8) + f"{x_hi:.2f}"
    lines.append(" " * (margin + 1) + x_axis)
    if xlabel:
        lines.append(" " * (margin + 1) + xlabel.center(width))
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append((ylabel + "   " if ylabel else "") + legend)
    return "\n".join(lines)
