"""Sweep runner — grid × repetitions × seeds, with flat result records.

An experiment is a *trial function* ``fn(params, seed) -> metrics dict``.
The runner executes it over a list of parameter points with several
seeded repetitions each and returns flat :class:`Record` objects that
the aggregation layer reduces.  Seeds derive deterministically from
``(seed0, point index, repetition)`` so any single record can be
re-run in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

__all__ = ["Record", "run_trials", "run_sweep"]

Params = Mapping[str, object]
Metrics = Mapping[str, float]
TrialFn = Callable[[Params, int], Metrics]


@dataclass(frozen=True)
class Record:
    """One trial's parameters, seed and measured metrics."""

    params: Dict[str, object]
    seed: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def value(self, key: str) -> float:
        """Metric lookup with params fallback (handy for tabulation)."""
        if key in self.metrics:
            return self.metrics[key]
        return float(self.params[key])  # type: ignore[arg-type]


def _derive_seed(seed0: int, point_index: int, repetition: int) -> int:
    """Deterministic, collision-free seed derivation."""
    return (seed0 * 1_000_003 + point_index * 10_007 + repetition) & 0x7FFFFFFF


def run_trials(
    fn: TrialFn,
    params: Params,
    repetitions: int,
    seed0: int = 0,
    point_index: int = 0,
) -> List[Record]:
    """Run one parameter point ``repetitions`` times."""
    records: List[Record] = []
    for rep in range(repetitions):
        seed = _derive_seed(seed0, point_index, rep)
        metrics = dict(fn(params, seed))
        records.append(Record(params=dict(params), seed=seed, metrics=metrics))
    return records


def run_sweep(
    fn: TrialFn,
    points: Sequence[Params] | Iterable[Params],
    repetitions: int = 10,
    seed0: int = 0,
    progress: Callable[[int, Params], None] | None = None,
) -> List[Record]:
    """Run a whole sweep.

    Parameters
    ----------
    fn:
        The trial function.
    points:
        Parameter dictionaries, one per sweep point.
    repetitions:
        Seeded repetitions per point.
    seed0:
        Base seed for the derivation scheme.
    progress:
        Optional callback ``(point_index, params)`` fired per point —
        the CLI uses it for a progress line.
    """
    records: List[Record] = []
    for idx, params in enumerate(points):
        if progress is not None:
            progress(idx, params)
        records.extend(
            run_trials(fn, params, repetitions, seed0=seed0, point_index=idx)
        )
    return records
