"""Analytic model of the expected iteration count (low-error regime).

Section 5 observes that for similar images the systolic time tracks the
difference in run counts, ``|k1 - k2|``.  This module *derives* that
quantity from the workload parameters with no fitted constants, closing
the loop on the Figure 5 left region.

Derivation
----------
Flip an interval ``E = [x0, x1]`` in a binary row.  Transitions strictly
inside ``E`` swap direction (rising ↔ falling) but their count is
unchanged; only the two boundary pairs matter.  Writing ``u, v`` for the
bits at ``x0-1, x0`` and ``w, z`` for the bits at ``x1, x1+1`` (all
pre-flip), a short case analysis gives the exact run-count change

    ΔK  =  1{u == v}  −  1{w != z}.

For the paper's alternating-renewal rows (runs uniform on ``[4, 20]``,
gaps tuned to the density), a uniformly placed boundary pair differs
with probability ``p_t = 2 / (E[R] + E[G])`` — two transitions per
run/gap period.  Hence per error run

    E[ΔK]   = 1 − 2·p_t,
    Var[ΔK] = 2·p_t·(1 − p_t)          (boundaries ≈ independent),

and for ``m`` independent error runs the total ``S = Σ ΔK_i`` is
approximately normal, so ``E|k1 − k2| = E|S|`` follows from the folded
normal.  Validity: error runs sparse enough not to interact — error
fraction ≲ 10 %, exactly the regime of the paper's claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.spec import BaseRowSpec, ErrorSpec

__all__ = [
    "DeltaModel",
    "delta_distribution",
    "predicted_run_difference",
    "predicted_iterations",
    "run_count_delta_exact",
]


def run_count_delta_exact(bits, x0: int, x1: int) -> int:
    """Reference implementation of the ΔK boundary formula (used by the
    tests to validate the derivation against brute force)."""
    u = bool(bits[x0 - 1]) if x0 > 0 else False
    v = bool(bits[x0])
    w = bool(bits[x1])
    z = bool(bits[x1 + 1]) if x1 + 1 < len(bits) else False
    return (1 if u == v else 0) - (1 if w != z else 0)


@dataclass(frozen=True)
class DeltaModel:
    """Per-error-run run-count-change statistics."""

    #: Probability that two adjacent bits differ (transition density).
    p_transition: float

    @property
    def mean(self) -> float:
        return 1.0 - 2.0 * self.p_transition

    @property
    def variance(self) -> float:
        p = self.p_transition
        return 2.0 * p * (1.0 - p)


def delta_distribution(base: BaseRowSpec, errors: ErrorSpec) -> DeltaModel:
    """The ΔK model for the paper's generator parameters.

    The row is an alternating renewal process with period
    ``E[R] + E[G]`` containing exactly two transitions, so the chance
    that a uniformly chosen adjacent pair straddles a transition is
    ``2 / (E[R] + E[G])``.  (``errors`` only matters through placement
    independence; the ΔK formula is length-free.)
    """
    period = base.mean_run_length + base.mean_gap
    return DeltaModel(p_transition=min(2.0 / period, 1.0))


def _folded_normal_mean(mu: float, sigma: float) -> float:
    """E|X| for X ~ N(mu, sigma^2)."""
    if sigma == 0.0:
        return abs(mu)
    return sigma * math.sqrt(2.0 / math.pi) * math.exp(
        -(mu**2) / (2 * sigma**2)
    ) + mu * math.erf(mu / (sigma * math.sqrt(2.0)))


def predicted_run_difference(
    base: BaseRowSpec, errors: ErrorSpec, n_error_runs: float
) -> float:
    """``E|k1 - k2|`` for ``n_error_runs`` independent error runs."""
    model = delta_distribution(base, errors)
    mu = n_error_runs * model.mean
    sigma = math.sqrt(max(n_error_runs * model.variance, 0.0))
    return _folded_normal_mean(mu, sigma)


def predicted_iterations(
    base: BaseRowSpec, errors: ErrorSpec, error_fraction: float
) -> float:
    """Expected systolic iterations at a given error fraction.

    The error-run count follows from the pixel budget over the mean
    error-run length; the iteration count is then the predicted
    ``E|k1 − k2|`` — the paper's dominating factor below the ~30 % knee.
    """
    if errors.fixed_length is not None:
        mean_len = float(errors.fixed_length)
    else:
        lo, hi = errors.run_length
        mean_len = (lo + hi) / 2.0
    n_error_runs = error_fraction * base.width / mean_len
    return predicted_run_difference(base, errors, n_error_runs)
