"""Experiment harness: sweeps, aggregation, analytic models, reporting.

This layer regenerates the paper's evaluation artifacts.  The benches in
``benchmarks/`` are thin wrappers over :mod:`repro.analysis.experiments`,
so the same sweeps are callable from tests, examples and the CLI.
"""

from repro.analysis.runner import Record, run_sweep, run_trials
from repro.analysis.aggregate import aggregate, group_by
from repro.analysis.models import (
    iteration_bounds,
    linear_fit,
    observed_bound_violations,
)
from repro.analysis.report import format_table, to_csv, to_markdown

__all__ = [
    "Record",
    "run_sweep",
    "run_trials",
    "aggregate",
    "group_by",
    "iteration_bounds",
    "linear_fit",
    "observed_bound_violations",
    "format_table",
    "to_csv",
    "to_markdown",
]
