"""Aggregation of sweep records: group-by + summary statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.runner import Record

__all__ = ["Summary", "group_by", "aggregate"]


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of one metric over a record group."""

    mean: float
    std: float
    min: float
    max: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        n = len(values)
        if n == 0:
            return cls(math.nan, math.nan, math.nan, math.nan, 0)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(mean=mean, std=math.sqrt(var), min=min(values), max=max(values), count=n)


def group_by(
    records: Sequence[Record], keys: Sequence[str]
) -> Dict[Tuple, List[Record]]:
    """Partition records by the values of the given parameter keys,
    preserving first-seen group order."""
    groups: Dict[Tuple, List[Record]] = {}
    for record in records:
        key = tuple(record.params[k] for k in keys)
        groups.setdefault(key, []).append(record)
    return groups


def aggregate(
    records: Sequence[Record],
    keys: Sequence[str],
    metrics: Sequence[str],
) -> List[Dict[str, object]]:
    """Summarize ``metrics`` per group.

    Returns one flat dict per group: the grouping parameters plus, for
    each metric ``m``, columns ``m`` (mean), ``m_std``, ``m_min``,
    ``m_max`` — the layout the table/plot emitters consume.
    """
    rows: List[Dict[str, object]] = []
    for key, group in group_by(records, keys).items():
        row: Dict[str, object] = dict(zip(keys, key))
        for metric in metrics:
            summary = Summary.of([r.metrics[metric] for r in group])
            row[metric] = summary.mean
            row[f"{metric}_std"] = summary.std
            row[f"{metric}_min"] = summary.min
            row[f"{metric}_max"] = summary.max
        row["n"] = len(group)
        rows.append(row)
    return rows
