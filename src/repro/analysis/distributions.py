"""Distributional statistics for experiment records.

Means hide the tails; deployment sizing (worst-row latency, pipeline
stalls) needs quantiles and confidence intervals.  These helpers work on
plain float sequences and on :class:`~repro.analysis.runner.Record`
lists, and everything is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.runner import Record

__all__ = [
    "quantiles",
    "histogram",
    "bootstrap_mean_ci",
    "tail_ratio",
    "metric_values",
    "DistributionSummary",
    "summarize_distribution",
]


def metric_values(records: Sequence[Record], metric: str) -> List[float]:
    """Extract one metric from a record list."""
    return [r.metrics[metric] for r in records]


def quantiles(
    values: Sequence[float], qs: Sequence[float] = (0.5, 0.9, 0.99)
) -> Dict[float, float]:
    """Selected quantiles (linear interpolation)."""
    if not values:
        return {q: float("nan") for q in qs}
    arr = np.asarray(values, dtype=float)
    return {q: float(np.quantile(arr, q)) for q in qs}


def histogram(
    values: Sequence[float], bins: int = 10
) -> List[Tuple[float, float, int]]:
    """Equal-width histogram as ``(lo, hi, count)`` triples."""
    if not values:
        return []
    counts, edges = np.histogram(np.asarray(values, dtype=float), bins=bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not values:
        return (float("nan"), float("nan"))
    if len(values) == 1:
        return (values[0], values[0])
    rng = np.random.default_rng(seed)
    arr = np.asarray(values, dtype=float)
    resamples = rng.choice(arr, size=(n_resamples, arr.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def tail_ratio(values: Sequence[float], q: float = 0.99) -> float:
    """``quantile(q) / mean`` — how heavy the tail is relative to the
    average (1.0 = perfectly flat; large = occasional slow rows, the
    number a pipelined deployment must budget for)."""
    if not values:
        return float("nan")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if mean == 0.0:
        return 1.0
    return float(np.quantile(arr, q)) / mean


@dataclass(frozen=True)
class DistributionSummary:
    """One metric's distribution in deployment-relevant terms."""

    mean: float
    ci_low: float
    ci_high: float
    p50: float
    p90: float
    p99: float
    max: float
    tail_ratio_99: float


def summarize_distribution(
    values: Sequence[float], seed: int = 0
) -> DistributionSummary:
    """Compute the full summary for one metric."""
    qs = quantiles(values, (0.5, 0.9, 0.99))
    lo, hi = bootstrap_mean_ci(values, seed=seed)
    arr = np.asarray(values, dtype=float) if values else np.array([float("nan")])
    return DistributionSummary(
        mean=float(arr.mean()),
        ci_low=lo,
        ci_high=hi,
        p50=qs[0.5],
        p90=qs[0.9],
        p99=qs[0.99],
        max=float(arr.max()),
        tail_ratio_99=tail_ratio(values),
    )
