"""``# rlelint: disable=...`` comment parsing.

Two directive forms, both only recognised inside real comment tokens
(the source is tokenized, so string literals mentioning the syntax do
not count):

``# rlelint: disable=RLE001,RLE003``
    Suppresses the listed rules on the physical line carrying the
    comment (for multi-line statements, put it on the line the rule
    reports — the node's first line).

``# rlelint: disable-file=RLE003``
    Suppresses the listed rules for the whole file, wherever the
    comment appears.

``all`` is accepted in place of a code list.  Malformed directives (a
recognisable ``rlelint:`` comment whose codes do not parse) raise
:class:`~repro.errors.LintError` rather than being silently ignored —
a suppression that does not suppress is worse than a lint failure.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set, Tuple

from repro.errors import LintError

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*rlelint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[^#]*)"
)
_CODE = re.compile(r"^RLE\d{3}$")


class Suppressions:
    """Parsed suppression directives for one file."""

    def __init__(
        self,
        file_level: FrozenSet[str],
        by_line: Dict[int, FrozenSet[str]],
        file_all: bool = False,
        line_all: FrozenSet[int] = frozenset(),
    ) -> None:
        self._file_level = file_level
        self._by_line = by_line
        self._file_all = file_all
        self._line_all = line_all

    def is_suppressed(self, code: str, line: int) -> bool:
        if self._file_all or code in self._file_level:
            return True
        if line in self._line_all:
            return True
        return code in self._by_line.get(line, frozenset())


def _parse_codes(raw: str, rel_path: str, line: int) -> Tuple[bool, FrozenSet[str]]:
    """Return ``(is_all, codes)`` for the directive payload."""
    text = raw.strip()
    if text == "all":
        return True, frozenset()
    codes: Set[str] = set()
    for part in re.split(r"[\s,]+", text):
        if not part:
            continue
        if not _CODE.match(part):
            raise LintError(
                f"{rel_path}:{line}: malformed rlelint directive — "
                f"{part!r} is not a rule code (expected RLE###, or 'all')"
            )
        codes.add(part)
    if not codes:
        raise LintError(
            f"{rel_path}:{line}: rlelint directive lists no rule codes"
        )
    return False, frozenset(codes)


def parse_suppressions(source: str, rel_path: str = "<source>") -> Suppressions:
    """Extract every directive from the file's comment tokens."""
    file_level: Set[str] = set()
    by_line: Dict[int, FrozenSet[str]] = {}
    file_all = False
    line_all: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        # the caller reports unparsable files through ast.parse; no
        # comments are extractable, so nothing is suppressed
        comments = []
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        is_all, codes = _parse_codes(match.group("codes"), rel_path, line)
        if match.group("kind") == "disable-file":
            if is_all:
                file_all = True
            file_level |= codes
        else:
            if is_all:
                line_all.add(line)
            else:
                by_line[line] = by_line.get(line, frozenset()) | codes
    return Suppressions(
        frozenset(file_level), by_line, file_all=file_all, line_all=frozenset(line_all)
    )
