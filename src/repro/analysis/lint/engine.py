"""File walking, per-module analysis, and report assembly for ``rlelint``.

The engine turns paths into :class:`ModuleContext` objects, runs every
selected rule, filters the findings through suppression comments and the
baseline, and hands back a :class:`LintReport`.  Fixture-driven tests use
:func:`check_source` directly to lint an in-memory snippet under a chosen
package-relative path (which is what activates path-scoped rules like
RLE003).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.lint.baseline import partition
from repro.analysis.lint.model import ModuleContext, Rule, Violation, create_rules
from repro.analysis.lint.suppressions import parse_suppressions
from repro.errors import LintError

__all__ = ["LintReport", "check_source", "iter_python_files", "lint_paths"]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Violations that fail the run (not suppressed, not baselined).
    violations: List[Violation] = field(default_factory=list)
    #: Grandfathered violations matched by the baseline (reported, non-fatal).
    baselined: List[Violation] = field(default_factory=list)
    #: Number of Python files analysed.
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def all_violations(self) -> List[Violation]:
        return sorted(
            self.violations + self.baselined,
            key=lambda v: (v.path, v.line, v.column, v.rule),
        )


def _package_relative(path: Path, root: Optional[Path]) -> str:
    """Best-effort package-relative posix path for rule scoping.

    Paths inside a ``repro`` package directory are expressed relative to
    it (``core/batched.py``); otherwise relative to the scanned root, so
    fixture trees laid out like the package classify identically.
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.name


def check_source(
    source: str,
    rel_path: str = "<source>",
    rules: Optional[Sequence[Rule]] = None,
    respect_suppressions: bool = True,
) -> List[Violation]:
    """Lint one in-memory module under a package-relative path."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise LintError(f"{rel_path}: cannot parse: {exc}") from exc
    module = ModuleContext(rel_path, source, tree)
    active = tuple(rules) if rules is not None else create_rules()
    found: List[Violation] = []
    for rule in active:
        found.extend(rule.check(module))
    if respect_suppressions:
        suppressions = parse_suppressions(source, rel_path)
        found = [
            violation
            for violation in found
            if not suppressions.is_suppressed(violation.rule, violation.line)
        ]
    return sorted(found, key=lambda v: (v.line, v.column, v.rule))


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated module list."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                seen.setdefault(found.resolve(), None)
        elif path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
        else:
            raise LintError(f"not a Python file: {path}")
    return sorted(seen)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Dict[str, Dict[str, object]]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files and/or directory trees.

    Parameters
    ----------
    baseline:
        Loaded baseline mapping (see :func:`~repro.analysis.lint.baseline.
        load_baseline`); ``None`` means nothing is grandfathered.
    select:
        Restrict to these rule codes (default: every registered rule).
    """
    rules = create_rules(select)
    paths = [Path(path) for path in paths]
    roots = [path for path in paths if path.is_dir()]
    root = roots[0] if len(roots) == 1 and len(paths) == 1 else None
    report = LintReport()
    found: List[Violation] = []
    for file_path in iter_python_files(paths):
        rel = _package_relative(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        found.extend(check_source(source, rel, rules=rules))
        report.files_checked += 1
    found.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    report.violations, report.baselined = partition(found, baseline or {})
    return report
