"""Baseline file handling — grandfathering pre-existing violations.

The baseline is a JSON document mapping violation fingerprints (see
:meth:`~repro.analysis.lint.model.Violation.fingerprint`) to enough
context to review them by hand.  Violations whose fingerprint appears in
the baseline are reported separately and do **not** fail the run; new
violations always do.  The workflow:

1. ``repro lint src/repro --write-baseline`` records the current tree's
   violations into the baseline file.
2. Commit the baseline; CI passes while the debt is paid down.
3. Fix a grandfathered site and its entry becomes *stale* — regenerate
   the baseline (it only ever shrinks in review).

The shipped tree is lint-clean, so no baseline file is committed; the
mechanism exists for future rules that land with open violations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.lint.model import Violation
from repro.errors import LintError

__all__ = ["load_baseline", "write_baseline", "partition"]

_VERSION = 1


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """Fingerprint → entry mapping; empty if the file does not exist."""
    if not path.exists():
        return {}
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} has unsupported structure "
            f"(expected a v{_VERSION} document written by --write-baseline)"
        )
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        raise LintError(f"baseline {path}: 'entries' must be a list")
    out: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise LintError(f"baseline {path}: entry without a fingerprint")
        out[str(entry["fingerprint"])] = entry
    return out


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Write every violation's fingerprint (deduplicated, sorted) to
    ``path``; returns the number of entries written."""
    entries = {}
    for violation in violations:
        entries[violation.fingerprint()] = {
            "fingerprint": violation.fingerprint(),
            "rule": violation.rule,
            "path": violation.path,
            "snippet": violation.snippet,
        }
    document = {
        "version": _VERSION,
        "entries": [entries[key] for key in sorted(entries)],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def partition(
    violations: Iterable[Violation], baseline: Dict[str, Dict[str, object]]
) -> Tuple[List[Violation], List[Violation]]:
    """Split into ``(new, baselined)`` against a loaded baseline."""
    new: List[Violation] = []
    grandfathered: List[Violation] = []
    for violation in violations:
        if violation.fingerprint() in baseline:
            grandfathered.append(violation)
        else:
            new.append(violation)
    return new, grandfathered
