"""The initial ``rlelint`` rule set — grounded in this codebase.

The rules encode the repository's correctness conventions as checks:

``RLE001`` bare-assert-invariant
    The paper's register invariants (Theorem 1, Corollary 1.1) must not
    be guarded by ``assert`` — it vanishes under ``python -O``.  Raise
    :class:`~repro.errors.InvariantViolation` instead.  *Type-narrowing*
    asserts (``assert isinstance(x, T)``, ``assert x is not None``, and
    ``and``-conjunctions of those) are exempt: they assist mypy and
    guard programmer errors, not data-dependent invariants.

``RLE002`` typed-exceptions
    Library code must raise :class:`~repro.errors.ReproError` subclasses,
    never bare ``ValueError``/``RuntimeError``, so callers can catch
    everything coming out of the package with one ``except`` clause.

``RLE003`` no-hot-path-decompression
    Hot-path modules (``core/``, ``systolic/``, ``rle/ops*.py``) must
    never materialize pixel arrays — the RLE speed advantage evaporates
    the moment code silently falls back to bitmaps (Ehrensperger et al.;
    Breuel).  Bans calls to the decompression helpers and any import of
    :mod:`repro.rle.bitmap`, outside a reviewed allowlist.

``RLE004`` int32-overflow-guard
    ``np.int32`` coordinate planes are only legal behind the overflow
    guard pattern of ``core/batched.py`` (dtype chosen by comparing the
    maximum coordinate against ``2**31`` / ``np.iinfo``); an unguarded
    ``np.int32`` silently wraps on multi-gigapixel rows.

``RLE005`` no-mutable-shared-state
    Mutable default arguments, and module-level mutable literals bound
    to lowercase names, are banned: ``core/parallel.py``-style worker
    code forks the interpreter, and mutable module state silently
    diverges between parent and workers.  Dunder names (``__all__``)
    and ``UPPER_CASE`` constants-by-convention are exempt.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.lint.model import ModuleContext, Rule, Violation, register

__all__ = [
    "HOT_PATH_PREFIXES",
    "HOT_PATH_GLOBS",
    "DECOMPRESSION_ALLOWLIST",
    "DECOMPRESSION_CALLS",
    "is_hot_path",
]

# --------------------------------------------------------------------- #
# Module classification                                                 #
# --------------------------------------------------------------------- #

#: Directories (package-relative) whose modules are hot paths.  ``obs/``
#: is included because its helpers (counter bumps, span bookkeeping,
#: per-step probes) run inside the engines' step loops — an accidental
#: decompression there would silently dominate every instrumented run.
#: ``service/`` runs per *request*: fingerprinting and cache lookups sit
#: in front of every engine batch, so a decompression there would undo
#: exactly the O(k) cheapness the cache is built on.
HOT_PATH_PREFIXES: Tuple[str, ...] = ("core/", "systolic/", "obs/", "service/")

#: Individual hot-path modules outside those directories.
HOT_PATH_GLOBS: Tuple[str, ...] = ("rle/ops*.py",)

#: Hot-path modules allowed to decompress anyway, with a reviewed reason:
#: the trace verifier replays certificates off-line, where materializing
#: pixel rows to cross-check a result is the whole point.
DECOMPRESSION_ALLOWLIST = frozenset({"core/verifier.py"})

#: Names whose *call* constitutes decompression (methods or functions).
DECOMPRESSION_CALLS = frozenset({"to_bits", "to_bitmap", "runs_to_bits", "unpackbits"})

#: The bitmap conversion module itself — importing it from a hot path is
#: banned outright (both spellings).
_BITMAP_MODULE = "repro.rle.bitmap"


def is_hot_path(rel_path: str) -> bool:
    """True if the package-relative path is a hot-path module."""
    if rel_path.startswith(HOT_PATH_PREFIXES):
        return True
    return any(fnmatch(rel_path, pattern) for pattern in HOT_PATH_GLOBS)


# --------------------------------------------------------------------- #
# RLE001                                                                #
# --------------------------------------------------------------------- #
def _is_narrowing_assert(test: ast.expr) -> bool:
    """Type-narrowing forms exempt from RLE001."""
    if isinstance(test, ast.Call):
        return isinstance(test.func, ast.Name) and test.func.id == "isinstance"
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        is_identity = isinstance(test.ops[0], (ast.Is, ast.IsNot))
        against_none = (
            isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        )
        return is_identity and against_none
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return all(_is_narrowing_assert(value) for value in test.values)
    return False


@register
class BareAssertRule(Rule):
    code = "RLE001"
    name = "bare-assert-invariant"
    description = (
        "invariant checks must raise InvariantViolation, not assert "
        "(asserts vanish under python -O; isinstance/is-None narrowing is exempt)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert) and not _is_narrowing_assert(node.test):
                yield module.violation(
                    self,
                    node,
                    "bare assert guards a runtime invariant and vanishes under "
                    "python -O; raise InvariantViolation(name, detail) instead",
                )


# --------------------------------------------------------------------- #
# RLE002                                                                #
# --------------------------------------------------------------------- #
_BANNED_EXCEPTIONS = ("ValueError", "RuntimeError")


@register
class TypedExceptionRule(Rule):
    code = "RLE002"
    name = "typed-exceptions"
    description = (
        "library code raises ReproError subclasses (SystolicError, "
        "GeometryError, ...), never bare ValueError/RuntimeError"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BANNED_EXCEPTIONS:
                yield module.violation(
                    self,
                    node,
                    f"raises bare {name}; raise a ReproError subclass from "
                    "repro.errors so callers can catch the package's failures "
                    "with one except clause",
                )


# --------------------------------------------------------------------- #
# RLE003                                                                #
# --------------------------------------------------------------------- #
@register
class HotPathDecompressionRule(Rule):
    code = "RLE003"
    name = "no-hot-path-decompression"
    description = (
        "hot-path modules (core/, systolic/, rle/ops*.py) must stay in the "
        "RLE domain: no to_bits/to_bitmap/runs_to_bits/unpackbits calls and "
        "no repro.rle.bitmap imports outside the allowlist"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        rel = module.rel_path
        if not is_hot_path(rel) or rel in DECOMPRESSION_ALLOWLIST:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _BITMAP_MODULE:
                        yield module.violation(
                            self, node, "imports repro.rle.bitmap on a hot path"
                        )
            elif isinstance(node, ast.ImportFrom):
                imported = node.module or ""
                if imported == _BITMAP_MODULE or (
                    imported == "repro.rle"
                    and any(alias.name == "bitmap" for alias in node.names)
                ):
                    yield module.violation(
                        self, node, "imports repro.rle.bitmap on a hot path"
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                called: Optional[str] = None
                if isinstance(func, ast.Attribute):
                    called = func.attr
                elif isinstance(func, ast.Name):
                    called = func.id
                if called in DECOMPRESSION_CALLS:
                    yield module.violation(
                        self,
                        node,
                        f"calls {called}() on a hot path — decompressing to a "
                        "pixel array forfeits the paper's O(k) advantage; keep "
                        "the computation in the RLE domain or move it off the "
                        "hot path",
                    )


# --------------------------------------------------------------------- #
# RLE004                                                                #
# --------------------------------------------------------------------- #
def _is_int32_reference(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "int32":
        return isinstance(node.value, ast.Name) and node.value.id in ("np", "numpy")
    return False


def _is_overflow_guard(node: ast.AST) -> bool:
    """``2**31`` appearing in an expression, or an ``iinfo`` call."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
        return (
            isinstance(node.left, ast.Constant)
            and node.left.value == 2
            and isinstance(node.right, ast.Constant)
            and node.right.value == 31
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr == "iinfo"
        if isinstance(func, ast.Name):
            return func.id == "iinfo"
    return False


_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class Int32OverflowRule(Rule):
    code = "RLE004"
    name = "int32-overflow-guard"
    description = (
        "np.int32 coordinate planes require the overflow guard pattern of "
        "core/batched.py (dtype gated on max_coord < 2**31 or np.iinfo)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        # map every node to its innermost enclosing function (None = module
        # scope), then require a guard in the same scope as each int32 use
        scope_of: Dict[ast.AST, Optional[ast.AST]] = {}

        def assign_scopes(node: ast.AST, scope: Optional[ast.AST]) -> None:
            scope_of[node] = scope
            inner = node if isinstance(node, _FunctionNode) else scope
            for child in ast.iter_child_nodes(node):
                assign_scopes(child, inner)

        assign_scopes(module.tree, None)
        guarded_scopes = {
            scope_of[node] for node in ast.walk(module.tree) if _is_overflow_guard(node)
        }
        for node in ast.walk(module.tree):
            if _is_int32_reference(node) and scope_of[node] not in guarded_scopes:
                yield module.violation(
                    self,
                    node,
                    "np.int32 used without an overflow guard in the same "
                    "function — choose the dtype with the max_coord < 2**31 "
                    "pattern (core/batched.py) or use int64",
                )


# --------------------------------------------------------------------- #
# RLE005                                                                #
# --------------------------------------------------------------------- #
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _is_constant_name(name: str) -> bool:
    """Dunder names and UPPER_CASE constants-by-convention are exempt."""
    return name.startswith("__") or name.isupper()


def _is_final_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id == "Final"
    if isinstance(annotation, ast.Subscript):
        return _is_final_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Final"
    return False


@register
class MutableSharedStateRule(Rule):
    code = "RLE005"
    name = "no-mutable-shared-state"
    description = (
        "no mutable default arguments; no module-level mutable literals "
        "bound to lowercase names (fork-based worker pools snapshot module "
        "state — dunder and UPPER_CASE constants are exempt)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        yield from self._mutable_defaults(module)
        yield from self._module_state(module)

    def _mutable_defaults(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FunctionNode):
                continue
            defaults: List[ast.expr] = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_value(default):
                    yield module.violation(
                        self,
                        default,
                        f"mutable default argument in {node.name}() is shared "
                        "across calls (and across forked workers); default to "
                        "None and construct inside the function",
                    )

    def _module_state(self, module: ModuleContext) -> Iterator[Violation]:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and _is_mutable_value(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not _is_constant_name(
                        target.id
                    ):
                        yield module.violation(
                            self,
                            stmt,
                            f"module-level mutable state {target.id!r} diverges "
                            "silently between parent and forked worker "
                            "processes; rename to UPPER_CASE if it is a "
                            "constant, otherwise move it into a class or "
                            "function",
                        )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if not _is_mutable_value(stmt.value):
                    continue
                if _is_final_annotation(stmt.annotation):
                    continue
                target = stmt.target
                if isinstance(target, ast.Name) and not _is_constant_name(target.id):
                    yield module.violation(
                        self,
                        stmt,
                        f"module-level mutable state {target.id!r} diverges "
                        "silently between parent and forked worker processes; "
                        "annotate it Final, rename to UPPER_CASE, or move it "
                        "into a class or function",
                    )
