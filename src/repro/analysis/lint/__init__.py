"""``rlelint`` — domain-aware static analysis for the systolic XOR stack.

A small AST-based linter whose rules encode this repository's
correctness conventions: invariants raise
:class:`~repro.errors.InvariantViolation` rather than ``assert``
(RLE001), library code raises typed :class:`~repro.errors.ReproError`
subclasses (RLE002), hot paths never decompress RLE data to pixel
arrays (RLE003), ``np.int32`` coordinate planes sit behind an overflow
guard (RLE004), and worker-visible mutable state is banned (RLE005).
The RLE1xx *concurrency* family (selectable as ``--select concurrency``)
adds flow-aware checks over a per-class lock model: lock-guarded
attributes never touched bare (RLE101), no unlocked read-modify-writes
in threaded classes (RLE102), builtin-typed wire payloads (RLE103), no
blocking calls in ``async def`` bodies (RLE104), and daemon-or-joined
thread lifecycles (RLE105).

Run it as ``repro lint``, ``python -m repro.analysis.lint`` or
``make lint``; see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue,
the ``# rlelint: disable=RLE###`` suppression syntax and the baseline
workflow.
"""

from repro.analysis.lint.engine import (
    LintReport,
    check_source,
    iter_python_files,
    lint_paths,
)
from repro.analysis.lint.model import (
    RULE_GROUPS,
    ModuleContext,
    Rule,
    Violation,
    all_rule_classes,
    create_rules,
    register,
    rule_codes,
)

# importing the rule modules populates the registry
from repro.analysis.lint import rules as _rules  # noqa: F401
from repro.analysis.lint import concurrency as _concurrency  # noqa: F401

__all__ = [
    "LintReport",
    "ModuleContext",
    "RULE_GROUPS",
    "Rule",
    "Violation",
    "all_rule_classes",
    "check_source",
    "create_rules",
    "iter_python_files",
    "lint_paths",
    "register",
    "rule_codes",
]
