"""Per-class concurrency model backing the RLE1xx rule family.

The RLE1xx rules (``concurrency.py``) need to answer questions like
"is this ``self._closed`` read protected by the same lock that guards
its writes?"  Answering that requires more context than a single AST
node, so this module builds a :class:`ClassModel` per ``ast.ClassDef``
recording:

* which ``self.*`` attributes are assigned in ``__init__`` and which of
  them are locks (``threading.Lock()`` / ``RLock()`` / ``Condition()``);
* every ``self.*`` access in every method, annotated with the set of
  locks held at that point (``with self._lock:`` blocks, sequential
  ``acquire()``/``release()`` pairs including the ``try``/``finally``
  idiom, and local aliases such as ``lock = self._lock; with lock:``);
* thread lifecycle facts: ``threading.Thread(...)`` spawns, ``daemon``
  flags, and ``join()`` calls in teardown methods.

Held-lock tracking is intraprocedural with one cross-method refinement:
for private helpers (single leading underscore, non-dunder) the pass
computes the set of locks *provably held at every internal call site*
via a greatest-fixpoint iteration and adds it to the helper's lexical
set.  This keeps the common "caller holds the lock" idiom
(``# caller holds self._lock`` helpers like ``DiffCache._sync_gauges``)
out of the false-positive pile without a full call-graph analysis.

Known limits (documented in docs/STATIC_ANALYSIS.md): the pass is
per-class, so attributes shared *across* objects (``other._x``) and
locks passed in from outside are invisible; nested function and lambda
bodies are not scanned; branch-local ``acquire()`` calls do not escape
their ``if`` arm.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = [
    "AttrAccess",
    "ClassModel",
    "ThreadSpawn",
    "LOCK_FACTORIES",
    "LIFECYCLE_METHODS",
    "build_class_models",
]

#: Constructor names treated as lock factories when assigned to a
#: ``self.*`` attribute in ``__init__`` (matched on the final attribute
#: so ``threading.Lock`` and bare ``Lock`` both count).
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Methods where a ``self._thread.join()`` call counts as provable
#: teardown for RLE105.
LIFECYCLE_METHODS = frozenset(
    {"close", "stop", "shutdown", "join", "terminate", "__exit__", "__del__"}
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    method: str
    node: ast.AST
    is_write: bool
    is_rmw: bool
    locks: FrozenSet[str]


@dataclass(frozen=True)
class ThreadSpawn:
    """One ``threading.Thread(...)`` construction inside a method."""

    method: str
    node: ast.Call
    target: Optional[str]
    is_self_attr: bool
    daemon: bool


@dataclass
class ClassModel:
    """Concurrency-relevant facts about one class body."""

    name: str
    node: ast.ClassDef
    init_attrs: Set[str] = field(default_factory=set)
    locks: Set[str] = field(default_factory=set)
    accesses: List[AttrAccess] = field(default_factory=list)
    thread_spawns: List[ThreadSpawn] = field(default_factory=list)
    #: ``self.<attr>.join()`` calls seen in LIFECYCLE_METHODS.
    joined_attrs: Set[str] = field(default_factory=set)
    #: ``self.<attr>.daemon = True`` assignments anywhere in the class.
    daemon_attrs: Set[str] = field(default_factory=set)
    #: local thread variables joined, keyed ``(method, name)``.
    local_joins: Set[Tuple[str, str]] = field(default_factory=set)
    #: local thread variables marked ``<name>.daemon = True``.
    local_daemons: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def spawns_thread(self) -> bool:
        return bool(self.thread_spawns)

    def guarded_writes(self) -> Dict[str, Set[str]]:
        """Map attr -> set of locks it is ever written under.

        Lock attributes themselves are excluded: rebinding a lock is a
        different bug class than tearing the data it guards.
        """
        guarded: Dict[str, Set[str]] = {}
        for access in self.accesses:
            if access.is_write and access.locks and access.attr not in self.locks:
                guarded.setdefault(access.attr, set()).update(access.locks)
        return guarded


def _is_self_attr(node: ast.AST) -> Optional[str]:
    """Return the attribute name for a ``self.<attr>`` node, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.AST) -> Optional[str]:
    """Resolve the root ``self.<attr>`` of an attribute/subscript chain.

    ``self._series[key]`` and ``self._worker.daemon`` both resolve to
    their base attribute (``_series`` / ``_worker``).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _is_self_attr(node)
        if direct is not None:
            return direct
        node = node.value
    return None


def _is_lock_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_FACTORIES
    return False


def _is_thread_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread"
    return False


def _daemon_kwarg(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "daemon":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _reads_attr(expr: ast.AST, attr: str) -> bool:
    """Does ``expr`` contain a read of ``self.<attr>``?"""
    for node in ast.walk(expr):
        if _is_self_attr(node) == attr:
            return True
    return False


class _MethodScan:
    """Single-method scanner with held-lock tracking."""

    def __init__(self, model: ClassModel, method: str) -> None:
        self.model = model
        self.method = method
        #: local name -> lock attribute it aliases.
        self.aliases: Dict[str, str] = {}
        #: internal ``self._helper(...)`` call sites: (callee, held).
        self.self_calls: List[Tuple[str, FrozenSet[str]]] = []

    # -- recording ---------------------------------------------------

    def _record(
        self,
        attr: str,
        node: ast.AST,
        held: Set[str],
        *,
        is_write: bool = False,
        is_rmw: bool = False,
    ) -> None:
        self.model.accesses.append(
            AttrAccess(
                attr=attr,
                method=self.method,
                node=node,
                is_write=is_write,
                is_rmw=is_rmw,
                locks=frozenset(held),
            )
        )

    # -- lock resolution ---------------------------------------------

    def _lock_name(self, expr: ast.AST) -> Optional[str]:
        """Resolve a with-item / acquire receiver to a lock attribute."""
        attr = _is_self_attr(expr)
        if attr is not None and attr in self.model.locks:
            return attr
        if isinstance(expr, ast.Name) and expr.id in self.aliases:
            return self.aliases[expr.id]
        return None

    # -- expression scanning -----------------------------------------

    def visit_expr(self, expr: Optional[ast.AST], held: Set[str]) -> None:
        """Record every ``self.*`` read (and internal call) in ``expr``."""
        if expr is None:
            return
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, _SKIP_NODES):
                continue  # nested scopes run later / elsewhere
            if isinstance(node, ast.Call):
                func = node.func
                callee = _is_self_attr(func)
                if callee is not None:
                    self.self_calls.append((callee, frozenset(held)))
                if _is_thread_call(node):
                    self.model.thread_spawns.append(
                        ThreadSpawn(
                            method=self.method,
                            node=node,
                            target=None,
                            is_self_attr=False,
                            daemon=_daemon_kwarg(node),
                        )
                    )
                    # recorded here; still descend for arg reads
                if isinstance(func, ast.Attribute) and func.attr == "join":
                    receiver = func.value
                    join_attr = _is_self_attr(receiver)
                    if join_attr is not None and self.method in LIFECYCLE_METHODS:
                        self.model.joined_attrs.add(join_attr)
                    elif isinstance(receiver, ast.Name):
                        self.model.local_joins.add((self.method, receiver.id))
            attr = _is_self_attr(node)
            if attr is not None:
                self._record(attr, node, held)
                continue  # don't also record the bare `self` Name
            stack.extend(ast.iter_child_nodes(node))

    # -- statement scanning ------------------------------------------

    def scan_block(self, stmts: List[ast.stmt], held: Set[str]) -> Set[str]:
        """Scan statements sequentially, returning the held set after."""
        held = set(held)
        for stmt in stmts:
            held = self.scan_stmt(stmt, held)
        return held

    def scan_stmt(self, stmt: ast.stmt, held: Set[str]) -> Set[str]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered = set(held)
            for item in stmt.items:
                name = self._lock_name(item.context_expr)
                self.visit_expr(item.context_expr, held)
                if name is not None:
                    entered.add(name)
                if item.optional_vars is not None and name is not None:
                    # `with self._lock as l:` aliases l to the lock too
                    if isinstance(item.optional_vars, ast.Name):
                        self.aliases[item.optional_vars.id] = name
            self.scan_block(stmt.body, entered)
            return held

        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, held)
            self.scan_block(stmt.body, held)
            self.scan_block(stmt.orelse, held)
            return held

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, held)
            self.visit_expr(stmt.target, held)
            self.scan_block(stmt.body, held)
            self.scan_block(stmt.orelse, held)
            return held

        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test, held)
            self.scan_block(stmt.body, held)
            self.scan_block(stmt.orelse, held)
            return held

        if isinstance(stmt, ast.Try):
            after = self.scan_block(stmt.body, held)
            for handler in stmt.handlers:
                # an exception may fire before any acquire in the body
                self.scan_block(handler.body, held)
            after = self.scan_block(stmt.orelse, after)
            after = self.scan_block(stmt.finalbody, after)
            return after

        if isinstance(stmt, ast.Expr):
            call = stmt.value
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
                name = self._lock_name(call.func.value)
                if name is not None and call.func.attr == "acquire":
                    self.visit_expr(call, held)
                    held = set(held)
                    held.add(name)
                    return held
                if name is not None and call.func.attr == "release":
                    self.visit_expr(call, held)
                    held = set(held)
                    held.discard(name)
                    return held
            self.visit_expr(stmt.value, held)
            return held

        if isinstance(stmt, ast.Assign):
            self._scan_assign(stmt.targets, stmt.value, stmt, held)
            return held

        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_assign([stmt.target], stmt.value, stmt, held)
            return held

        if isinstance(stmt, ast.AugAssign):
            self._scan_augassign(stmt, held)
            return held

        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                base = _base_self_attr(target)
                if base is not None:
                    self._record(base, target, held)
                self.visit_expr(
                    target.slice if isinstance(target, ast.Subscript) else None, held
                )
            return held

        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                self.visit_expr(value, held)
            return held

        if isinstance(stmt, _FUNCTION_NODES) or isinstance(stmt, ast.ClassDef):
            return held  # nested scope: not scanned (documented limit)

        # anything else: record reads in its expressions
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self.visit_expr(value, held)
            elif isinstance(value, ast.stmt):
                held = self.scan_stmt(value, held)
        return held

    def _scan_assign(
        self,
        targets: List[ast.expr],
        value: ast.AST,
        stmt: ast.stmt,
        held: Set[str],
    ) -> None:
        # lock aliasing: `lock = self._lock`
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            aliased = _is_self_attr(value)
            if aliased is not None and aliased in self.model.locks:
                self.aliases[targets[0].id] = aliased

        # thread spawn with a bindable target
        if _is_thread_call(value):
            spawn_target: Optional[str] = None
            is_self = False
            if len(targets) == 1:
                attr = _is_self_attr(targets[0])
                if attr is not None:
                    spawn_target, is_self = attr, True
                elif isinstance(targets[0], ast.Name):
                    spawn_target = targets[0].id
            self.model.thread_spawns.append(
                ThreadSpawn(
                    method=self.method,
                    node=value,  # type: ignore[arg-type]
                    target=spawn_target,
                    is_self_attr=is_self,
                    daemon=_daemon_kwarg(value),  # type: ignore[arg-type]
                )
            )
            for child in ast.iter_child_nodes(value):
                self.visit_expr(child, held)
        else:
            self.visit_expr(value, held)

        for target in targets:
            self._scan_target(target, value, held)

    def _scan_target(self, target: ast.expr, value: ast.AST, held: Set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, value, held)
            return
        if isinstance(target, ast.Starred):
            self._scan_target(target.value, value, held)
            return

        # `self._worker.daemon = True` / `t.daemon = True`
        if isinstance(target, ast.Attribute) and target.attr == "daemon":
            receiver = target.value
            attr = _is_self_attr(receiver)
            truthy = isinstance(value, ast.Constant) and value.value is True
            if attr is not None and truthy:
                self.model.daemon_attrs.add(attr)
            elif isinstance(receiver, ast.Name) and truthy:
                self.model.local_daemons.add((self.method, receiver.id))

        attr = _is_self_attr(target)
        if attr is not None:
            rmw = not _is_thread_call(value) and _reads_attr(value, attr)
            self._record(attr, target, held, is_write=True, is_rmw=rmw)
            return

        base = _base_self_attr(target)
        if base is not None:
            # `self._d[k] = ...` mutates the object behind the attr: a
            # read of the attr itself, rmw if the value re-reads it
            # (`self._d[k] = self._d.get(k, 0) + 1`).
            rmw = _reads_attr(value, base)
            self._record(base, target, held, is_write=False, is_rmw=rmw)
            if isinstance(target, ast.Subscript):
                self.visit_expr(target.slice, held)
        else:
            self.visit_expr(target, held)

    def _scan_augassign(self, stmt: ast.AugAssign, held: Set[str]) -> None:
        self.visit_expr(stmt.value, held)
        target = stmt.target
        attr = _is_self_attr(target)
        if attr is not None:
            self._record(attr, target, held, is_write=True, is_rmw=True)
            return
        base = _base_self_attr(target)
        if base is not None:
            self._record(base, target, held, is_rmw=True)
            if isinstance(target, ast.Subscript):
                self.visit_expr(target.slice, held)
        else:
            self.visit_expr(target, held)


def _is_private_helper(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def _propagate_caller_locks(
    model: ClassModel,
    scans: Dict[str, _MethodScan],
) -> Dict[str, FrozenSet[str]]:
    """Greatest-fixpoint 'caller holds the lock' refinement.

    A private helper is credited with a lock iff *every* internal call
    site provably holds it (lexically, or transitively via the caller's
    own credited set).  Starting optimistic (all locks) and iterating
    down converges even through helper->helper chains like
    ``CircuitBreaker.record_failure -> _tick -> _transition``.
    """
    all_locks = frozenset(model.locks)
    extra: Dict[str, FrozenSet[str]] = {
        name: all_locks for name in scans if _is_private_helper(name)
    }
    sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for caller, scan in scans.items():
        for callee, held in scan.self_calls:
            if callee in extra:
                sites.setdefault(callee, []).append((caller, held))

    for _ in range(len(extra) + 1):
        changed = False
        for name in extra:
            call_sites = sites.get(name)
            if not call_sites:
                refined: FrozenSet[str] = frozenset()
            else:
                refined = all_locks
                for caller, held in call_sites:
                    refined &= held | extra.get(caller, frozenset())
            if refined != extra[name]:
                extra[name] = refined
                changed = True
        if not changed:
            break
    return extra


def _scan_init(model: ClassModel, init: ast.FunctionDef) -> None:
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _is_self_attr(target)
                if attr is None:
                    continue
                model.init_attrs.add(attr)
                if _is_lock_factory_call(node.value):
                    model.locks.add(attr)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            attr = _is_self_attr(node.target)
            if attr is not None:
                model.init_attrs.add(attr)
                if (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and _is_lock_factory_call(node.value)
                ):
                    model.locks.add(attr)


def build_class_model(node: ast.ClassDef) -> ClassModel:
    """Build the concurrency model for one class definition."""
    model = ClassModel(name=node.name, node=node)
    methods: List[ast.FunctionDef] = []
    for stmt in node.body:
        if isinstance(stmt, _FUNCTION_NODES):
            if stmt.name == "__init__":
                _scan_init(model, stmt)
            methods.append(stmt)  # type: ignore[arg-type]

    scans: Dict[str, _MethodScan] = {}
    for method in methods:
        if method.name == "__init__":
            scan = _MethodScan(model, method.name)
            # __init__ accesses are single-threaded by convention and
            # skipped, but thread spawns there still count for RLE105.
            before = len(model.accesses)
            scan.scan_block(method.body, set())
            del model.accesses[before:]
            scans[method.name] = scan
            continue
        scan = _MethodScan(model, method.name)
        scan.scan_block(method.body, set())
        scans[method.name] = scan

    extra = _propagate_caller_locks(model, scans)
    if any(extra.values()):
        model.accesses = [
            AttrAccess(
                attr=a.attr,
                method=a.method,
                node=a.node,
                is_write=a.is_write,
                is_rmw=a.is_rmw,
                locks=a.locks | extra.get(a.method, frozenset()),
            )
            for a in model.accesses
        ]
    return model


def build_class_models(tree: ast.AST) -> Iterator[ClassModel]:
    """Yield a :class:`ClassModel` for every class in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield build_class_model(node)
