"""Command-line front end for ``rlelint``.

Reached three ways, all sharing :func:`configure_parser` / :func:`run`:

* ``repro lint [paths...]`` — subcommand of the main CLI;
* ``python -m repro.analysis.lint`` — standalone module;
* ``make lint`` / the CI ``lint`` job — wrap the first form.

Exit codes: ``0`` clean (baselined findings allowed), ``1`` new
violations, ``2`` configuration error (bad path, malformed directive or
baseline, unknown rule code).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.lint.baseline import load_baseline, write_baseline
from repro.analysis.lint.engine import lint_paths
from repro.analysis.lint.model import RULE_GROUPS, all_rule_classes
from repro.errors import LintError

__all__ = ["configure_parser", "run", "main"]

DEFAULT_TARGET = "src/repro"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_TARGET} if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="FILE",
        help="JSON baseline of grandfathered violations (non-fatal when matched)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current violations into --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="CODES",
        help=(
            "comma-separated rule codes or group aliases to run "
            f"(groups: {', '.join(sorted(RULE_GROUPS))}; default: all)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _default_paths() -> List[Path]:
    candidate = Path(DEFAULT_TARGET)
    return [candidate if candidate.is_dir() else Path(".")]


def _list_rules() -> int:
    for cls in all_rule_classes():
        print(f"{cls.code}  {cls.name}")
        print(f"        {cls.description}")
    for group, members in sorted(RULE_GROUPS.items()):
        print(f"group {group} = {','.join(members)}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        return _list_rules()
    try:
        paths = [Path(p) for p in args.paths] or _default_paths()
        select = (
            [code.strip() for code in args.select.split(",") if code.strip()]
            if args.select
            else None
        )
        baseline_path = Path(args.baseline) if args.baseline else None
        if args.write_baseline and baseline_path is None:
            raise LintError("--write-baseline requires --baseline FILE")

        if args.write_baseline:
            report = lint_paths(paths, baseline=None, select=select)
            count = write_baseline(baseline_path, report.violations)
            print(
                f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
                f"to {baseline_path}"
            )
            return 0

        baseline = load_baseline(baseline_path) if baseline_path else {}
        report = lint_paths(paths, baseline=baseline, select=select)
    except LintError as exc:
        print(f"rlelint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": report.files_checked,
                    "violations": [v.to_json() for v in report.violations],
                    "baselined": [v.to_json() for v in report.baselined],
                },
                indent=2,
            )
        )
    else:
        for violation in report.violations:
            print(violation.format())
        for violation in report.baselined:
            print(f"{violation.format()} (baselined)")
        summary = (
            f"rlelint: {report.files_checked} files checked, "
            f"{len(report.violations)} violation"
            f"{'' if len(report.violations) == 1 else 's'}"
        )
        if report.baselined:
            summary += f" ({len(report.baselined)} baselined)"
        print(summary)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rlelint",
        description="Domain-aware static analysis for the systolic XOR stack",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
