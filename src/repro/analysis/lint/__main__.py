"""``python -m repro.analysis.lint`` — standalone rlelint entry point."""

import sys

import repro.analysis.lint  # noqa: F401  — ensure the rule registry is populated
from repro.analysis.lint.cli import main

if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
