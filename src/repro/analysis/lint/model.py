"""Core data model of ``rlelint``: violations, rules, and the registry.

A *rule* inspects one module's AST and yields :class:`Violation` records;
the engine (:mod:`repro.analysis.lint.engine`) handles file walking,
suppression comments and the baseline, so rules stay pure functions of
the parsed source.  Rules register themselves with the :func:`register`
decorator, which keys them by their ``RLE###`` code — the same code used
in suppression comments, baseline entries and ``--select`` filters.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.errors import LintError

__all__ = [
    "Violation",
    "ModuleContext",
    "Rule",
    "RULE_GROUPS",
    "expand_groups",
    "register",
    "all_rule_classes",
    "create_rules",
    "rule_codes",
]

#: Named rule groups usable anywhere a code is (``--select concurrency``).
#: A group expands to its member codes before validation.
RULE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "concurrency": ("RLE101", "RLE102", "RLE103", "RLE104", "RLE105"),
}


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    #: Rule code, e.g. ``"RLE002"``.
    rule: str
    #: Package-relative posix path, e.g. ``"core/pipeline.py"``.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    column: int
    #: Human explanation, including the suggested fix.
    message: str
    #: The stripped source line — the stable part of the fingerprint.
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline.

        Keyed on (rule, path, snippet) rather than the line number, so
        unrelated edits above a grandfathered violation do not un-baseline
        it; editing the offending line itself does.
        """
        material = f"{self.rule}:{self.path}:{self.snippet}"
        return hashlib.sha1(material.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


class ModuleContext:
    """Everything a rule may ask about one module under analysis."""

    def __init__(self, rel_path: str, source: str, tree: Optional[ast.Module] = None) -> None:
        #: Posix path relative to the ``repro`` package root (used for
        #: hot-path / allowlist classification).
        self.rel_path = rel_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = tree if tree is not None else ast.parse(source)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Violation(
            rule=rule.code,
            path=self.rel_path,
            line=line,
            column=column,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class for checkers.  Subclasses set the class attributes and
    implement :meth:`check`; :func:`register` adds them to the registry."""

    #: ``RLE###`` code — the identity used everywhere (output, suppressions,
    #: baseline, ``--select``).
    code: str = ""
    #: Short kebab-case name shown by ``--list-rules``.
    name: str = ""
    #: One-line rationale shown by ``--list-rules``.
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError  # pragma: no cover - abstract

    # Rules are stateless; one instance may be reused across files.


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry by its code."""
    if not cls.code:
        raise LintError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise LintError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rule_classes() -> Tuple[Type[Rule], ...]:
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rule_codes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def expand_groups(select: Sequence[str]) -> Tuple[str, ...]:
    """Expand group aliases (``concurrency``) into their member codes."""
    expanded: List[str] = []
    for item in select:
        expanded.extend(RULE_GROUPS.get(item, (item,)))
    return tuple(expanded)


def create_rules(select: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """Instantiate the selected rules (all of them by default).

    ``select`` entries may be rule codes or group aliases from
    :data:`RULE_GROUPS`.

    Raises
    ------
    LintError
        If ``select`` names a code no registered rule carries.
    """
    if select is None:
        return tuple(cls() for cls in all_rule_classes())
    codes = expand_groups(select)
    unknown = sorted(set(codes) - set(_REGISTRY))
    if unknown:
        raise LintError(
            f"unknown rule code(s) {', '.join(unknown)} — "
            f"known: {', '.join(rule_codes())} "
            f"(groups: {', '.join(sorted(RULE_GROUPS))})"
        )
    return tuple(_REGISTRY[code]() for code in sorted(set(codes)))
