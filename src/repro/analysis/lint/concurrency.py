"""The concurrency-discipline rule family, RLE101–RLE105.

PR 6's bug sweep found two lost-update races on ``RowDiffBatcher``
counters and one torn ``DiffCache.hit_rate`` read — all the same shape:
an attribute guarded by a lock in one method and touched bare in
another.  These rules turn that shape (and its neighbours in the
threaded/multiprocess/asyncio serving tier) into lint-time findings,
using the per-class :mod:`~repro.analysis.lint.classmodel` pass:

``RLE101`` lock-guarded-attribute
    An attribute written under a lock anywhere in a class must never be
    read or written outside that lock elsewhere in the same class.

``RLE102`` atomic-rmw
    Read-modify-write operations (``+=``, ``x = x + ...``,
    ``d[k] += ...``) on attributes of classes that own a lock or spawn
    a ``threading.Thread`` must run inside a ``with <lock>:`` block —
    ``+=`` is not atomic under the GIL (bytecode interleaving loses
    increments; that was the PR 6 batcher-counter bug).

``RLE103`` wire-type-builtin
    Payloads crossing the process boundary — ``conn.send(...)`` /
    ``sendall(...)`` arguments and ``encode_*`` return values in the
    wire modules (``service/shard.py``, ``service/frontend.py``, and
    the observability wire codecs ``obs/context.py`` / ``obs/log.py``)
    — must be builtin-typed: no NumPy scalars/arrays (pickle ties
    workers to a NumPy version and hides dtype drift) and no ad-hoc
    class instances.

``RLE104`` no-blocking-in-async
    ``async def`` bodies must not call blocking primitives
    (``time.sleep``, ``Lock.acquire``, ``queue.Queue.get/put``,
    blocking socket ops) without awaiting an executor — one blocking
    call stalls the event loop for every connection the front-end is
    serving.

``RLE105`` thread-lifecycle
    Every ``threading.Thread`` started in library code must be
    ``daemon=True`` or provably joined in a lifecycle method
    (``close``/``stop``/``__exit__``/...) of the same class; otherwise
    interpreter shutdown hangs on the worker.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.classmodel import build_class_models
from repro.analysis.lint.model import ModuleContext, Rule, Violation, register

__all__ = [
    "WIRE_MODULES",
    "WIRE_SEND_METHODS",
    "BLOCKING_MODULE_CALLS",
    "BLOCKING_ATTR_CALLS",
]

#: Package-relative modules whose send/encode boundaries RLE103 checks.
#: The obs codecs are here because their encode_* outputs ride the same
#: pipes: ContextWire in requests, SpanWire/EventWire in replies.  The
#: persistent store is here because its encode_* blobs cross the same
#: kind of boundary, just in time instead of space: bytes written by one
#: process version are decoded by another, so they must stay
#: builtin-typed for the same version-skew reasons.
WIRE_MODULES: Tuple[str, ...] = (
    "service/shard.py",
    "service/frontend.py",
    "service/stream.py",
    "service/store.py",
    "obs/context.py",
    "obs/log.py",
)

#: Methods whose arguments cross the pipe/socket boundary.
WIRE_SEND_METHODS = frozenset({"send", "sendall", "send_bytes"})

#: ``module.function`` calls that block the calling thread.
BLOCKING_MODULE_CALLS = frozenset(
    {
        ("time", "sleep"),
        ("socket", "create_connection"),
        ("subprocess", "run"),
        ("subprocess", "check_output"),
        ("subprocess", "check_call"),
    }
)

#: Method names that block regardless of receiver (lock/socket/pipe
#: primitives).  ``join`` is deliberately absent: ``", ".join`` is too
#: common to disambiguate syntactically.
BLOCKING_ATTR_CALLS = frozenset(
    {"acquire", "recv", "recv_into", "accept", "sendall", "connect"}
)

#: Queue methods that block; only flagged when the receiver looks like a
#: queue (name containing "queue", or a ``_q``/``q`` binding).
_QUEUE_METHODS = frozenset({"get", "put"})

_ASYNC_SKIP = (ast.FunctionDef, ast.Lambda, ast.ClassDef)


# --------------------------------------------------------------------- #
# RLE101                                                                #
# --------------------------------------------------------------------- #
@register
class LockGuardedAttributeRule(Rule):
    code = "RLE101"
    name = "lock-guarded-attribute"
    description = (
        "an attribute written under a lock anywhere in a class must never "
        "be read or written outside that lock elsewhere in the same class "
        "(torn reads / lost updates — the PR 6 counter-bug shape)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for model in build_class_models(module.tree):
            if not model.locks:
                continue
            guarded = model.guarded_writes()
            if not guarded:
                continue
            for access in model.accesses:
                guards = guarded.get(access.attr)
                if guards is None or access.attr in model.locks:
                    continue
                if access.locks & guards:
                    continue
                kind = "written" if access.is_write else "read"
                lock = min(guards)  # deterministic pick for the message
                yield module.violation(
                    self,
                    access.node,
                    f"self.{access.attr} is written under self.{lock} elsewhere "
                    f"in {model.name} but {kind} here without it; unlocked "
                    f"access tears reads and loses updates — wrap this in "
                    f"`with self.{lock}:` (method {access.method})",
                )


# --------------------------------------------------------------------- #
# RLE102                                                                #
# --------------------------------------------------------------------- #
@register
class AtomicRmwRule(Rule):
    code = "RLE102"
    name = "atomic-rmw"
    description = (
        "read-modify-write ops (+=, x = x + ..., d[k] += ...) on attributes "
        "of classes that own a Lock or spawn a Thread must run inside a "
        "`with <lock>:` block — += is not atomic under the GIL"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for model in build_class_models(module.tree):
            if not (model.locks or model.spawns_thread):
                continue
            for access in model.accesses:
                if not access.is_rmw or access.locks:
                    continue
                if access.attr in model.locks:
                    continue
                hint = (
                    f"`with self.{min(model.locks)}:`"
                    if model.locks
                    else "a lock (the class spawns a Thread but owns none)"
                )
                yield module.violation(
                    self,
                    access.node,
                    f"read-modify-write of self.{access.attr} outside any lock "
                    f"in {model.name}.{access.method}; += interleaves under "
                    f"the GIL and loses updates — guard it with {hint}",
                )


# --------------------------------------------------------------------- #
# RLE103                                                                #
# --------------------------------------------------------------------- #
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _wire_payload_offenders(expr: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """Yield (node, reason) for non-builtin values in a wire payload."""
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in _NUMPY_NAMES:
                yield node, f"NumPy object ({node.value.id}.{node.attr})"
                continue
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id[:1].isupper()
                and func.id not in ("None", "True", "False")
            ):
                yield node, f"class instance ({func.id}(...))"
                # still scan the arguments for nested offenders
        stack.extend(ast.iter_child_nodes(node))


@register
class WireTypeBuiltinRule(Rule):
    code = "RLE103"
    name = "wire-type-builtin"
    description = (
        "payloads crossing the worker pipe/socket (conn.send args, encode_* "
        "returns in service/shard.py + service/frontend.py) must be builtin-"
        "typed: no NumPy scalars/arrays, no ad-hoc class instances"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if module.rel_path not in WIRE_MODULES:
            return
        payloads: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in WIRE_SEND_METHODS:
                    payloads.extend(node.args)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("encode_"):
                    continue
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and sub.value is not None:
                        payloads.append(sub.value)
        for payload in payloads:
            for offender, reason in _wire_payload_offenders(payload):
                yield module.violation(
                    self,
                    offender,
                    f"wire payload contains a non-builtin value: {reason}; "
                    "the (kind, seq, payload) protocol is builtin-typed so "
                    "workers stay version-independent — convert at the "
                    "encode boundary (int()/float()/tolist()/astuple)",
                )


# --------------------------------------------------------------------- #
# RLE104                                                                #
# --------------------------------------------------------------------- #
def _looks_like_queue(expr: ast.AST) -> bool:
    name: Optional[str] = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    if name is None:
        return False
    lowered = name.lower()
    return "queue" in lowered or lowered in ("q", "_q")


@register
class NoBlockingInAsyncRule(Rule):
    code = "RLE104"
    name = "no-blocking-in-async"
    description = (
        "async def bodies must not call blocking primitives (time.sleep, "
        "Lock.acquire, queue get/put, blocking socket ops) outside "
        "run_in_executor — one blocking call stalls every connection"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        awaited: Set[int] = set()
        for stmt in func.body:
            for sub in self._walk_scope(stmt):
                if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call):
                    awaited.add(id(sub.value))
        for stmt in func.body:
            for sub in self._walk_scope(stmt):
                if not isinstance(sub, ast.Call) or id(sub) in awaited:
                    continue
                label = self._blocking_label(sub)
                if label is not None:
                    yield module.violation(
                        self,
                        sub,
                        f"blocking call {label} inside async def {func.name}; "
                        "it parks the event loop for every in-flight "
                        "connection — await loop.run_in_executor(...) or use "
                        "the asyncio equivalent",
                    )

    @staticmethod
    def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
        """Walk without descending into nested (non-async) scopes."""
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, _ASYNC_SKIP):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if (receiver.id, func.attr) in BLOCKING_MODULE_CALLS:
                return f"{receiver.id}.{func.attr}()"
        if func.attr in BLOCKING_ATTR_CALLS:
            if isinstance(receiver, ast.Constant):
                return None  # e.g. a string literal method
            return f".{func.attr}()"
        if func.attr in _QUEUE_METHODS and _looks_like_queue(receiver):
            return f"queue .{func.attr}()"
        return None


# --------------------------------------------------------------------- #
# RLE105                                                                #
# --------------------------------------------------------------------- #
@register
class ThreadLifecycleRule(Rule):
    code = "RLE105"
    name = "thread-lifecycle"
    description = (
        "every threading.Thread started in library code must be daemon=True "
        "or provably joined in close()/stop()/__exit__ on the same class — "
        "otherwise interpreter shutdown hangs on the worker"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        in_class: Set[int] = set()
        for model in build_class_models(module.tree):
            for spawn in model.thread_spawns:
                in_class.add(id(spawn.node))
                if spawn.daemon:
                    continue
                if spawn.is_self_attr and spawn.target is not None:
                    if spawn.target in model.joined_attrs:
                        continue
                    if spawn.target in model.daemon_attrs:
                        continue
                elif spawn.target is not None:
                    if (spawn.method, spawn.target) in model.local_joins:
                        continue
                    if (spawn.method, spawn.target) in model.local_daemons:
                        continue
                where = (
                    f"self.{spawn.target}"
                    if spawn.is_self_attr
                    else (spawn.target or "<unbound>")
                )
                yield module.violation(
                    self,
                    spawn.node,
                    f"Thread bound to {where} in {model.name}.{spawn.method} "
                    "is neither daemon=True nor joined in a lifecycle method "
                    "(close/stop/shutdown/__exit__); it outlives the object "
                    "and hangs interpreter shutdown",
                )
        # Threads constructed outside any class: require daemon=True or a
        # join()/daemon=True on the bound name in the same lexical scope.
        yield from self._module_level(module, in_class)

    def _module_level(
        self, module: ModuleContext, in_class: Set[int]
    ) -> Iterator[Violation]:
        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            joined, daemoned = self._scope_teardowns(scope)
            for node in self._scope_walk(scope):
                if not self._is_thread_call(node) or id(node) in in_class:
                    continue
                if self._daemon_kwarg(node):
                    continue
                bound = self._bound_name(node, scope)
                if bound is not None and (bound in joined or bound in daemoned):
                    continue
                yield module.violation(
                    self,
                    node,
                    "Thread started outside a class is neither daemon=True "
                    "nor joined in the same scope; it can outlive the caller "
                    "and hang interpreter shutdown",
                )

    @staticmethod
    def _is_thread_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "Thread"
        return isinstance(func, ast.Attribute) and func.attr == "Thread"

    @staticmethod
    def _daemon_kwarg(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "daemon":
                return isinstance(kw.value, ast.Constant) and kw.value.value is True
        return False

    @classmethod
    def _scope_walk(cls, scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes of ``scope`` excluding nested functions and classes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _scope_teardowns(cls, scope: ast.AST) -> Tuple[Set[str], Set[str]]:
        joined: Set[str] = set()
        daemoned: Set[str] = set()
        for node in cls._scope_walk(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "join" and isinstance(node.func.value, ast.Name):
                    joined.add(node.func.value.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "daemon"
                        and isinstance(target.value, ast.Name)
                        and isinstance(node.value, ast.Constant)
                        and node.value.value is True
                    ):
                        daemoned.add(target.value.id)
        return joined, daemoned

    @classmethod
    def _bound_name(cls, call: ast.Call, scope: ast.AST) -> Optional[str]:
        for node in cls._scope_walk(scope):
            if isinstance(node, ast.Assign) and node.value is call:
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    return node.targets[0].id
        return None
