"""Structured event logging: bounded, rate-limited, schema-checked JSONL.

Metrics say *how much*, traces say *where the time went* — this module
answers *what happened, in order*: a request was admitted, completed or
shed; an engine batch was retried; the breaker changed state; a worker
died; a rotted cache entry self-healed.  Each event is one JSON object
(schema ``repro.log/v1``, validated by
:func:`repro.obs.schema.validate_log_record`), so the log greps, tails
and joins against traces by ``request_id``.

Design constraints, inherited from the rest of :mod:`repro.obs`:

* **Bounded.**  Records land in a ring buffer (``capacity`` newest are
  kept) — a serving process can log forever without growing.
* **Rate-limited.**  A token bucket (``max_per_sec``) sheds log volume
  under load *before* formatting cost is paid; drops are counted per
  event name (:meth:`StructuredLog.dropped`) rather than silently
  swallowed.
* **Thread-safe.**  Caller threads, the batcher worker and the TCP
  executor all log into one instance; every mutation runs under the
  instance lock (rules RLE101/RLE102).
* **Builtin-typed wire form.**  Shard workers ship recent events back
  to the front-end inside their replies as :data:`EventWire` tuples —
  :func:`encode_event` / :func:`decode_event` follow the same RLE103
  codec discipline as :mod:`repro.service.shard`.

Producers take ``log=None`` and emit only behind an ``is not None``
check, so the disabled path costs nothing.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "LOG_SCHEMA",
    "LOG_EVENTS",
    "LOG_LEVELS",
    "EventWire",
    "StructuredLog",
    "encode_event",
    "decode_event",
]

#: The document schema tag carried by every record.
LOG_SCHEMA = "repro.log/v1"

#: The event vocabulary.  Closed on purpose: a typo'd event name is a
#: wiring bug, and the schema check rejects it.
LOG_EVENTS: Tuple[str, ...] = (
    "request_admitted",
    "request_completed",
    "request_shed",
    "retry",
    "breaker_transition",
    "worker_death",
    "cache_self_heal",
    "cache_warm",
    "cache_quarantine",
    "deadline_expired",
    "stream_opened",
    "stream_rekey",
    "stream_closed",
)

#: Severity vocabulary (plain strings — no logging-module coupling).
LOG_LEVELS: Tuple[str, ...] = ("debug", "info", "warning", "error")

#: One event on the wire: ``(ts, event, level, request_id,
#: sorted (key, value) field pairs)`` — builtin scalars only.
EventWire = Tuple[
    float,
    str,
    str,
    Optional[str],
    Tuple[Tuple[str, object], ...],
]

#: Scalar types allowed as field values; anything else is stringified
#: at log time so records stay JSON- and pipe-safe.
_SCALARS = (bool, int, float, str)


def _coerce_field(value: object) -> object:
    if value is None or isinstance(value, _SCALARS):
        return value
    return str(value)


class StructuredLog:
    """A bounded, rate-limited structured event log.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest records fall off when full.
    max_per_sec:
        Token-bucket admission rate (sustained events/second, with a
        burst of the same size).  ``None`` disables rate limiting.
    clock:
        Wall-clock source for record timestamps and bucket refill;
        injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 4096,
        max_per_sec: Optional[float] = 500.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        if max_per_sec is not None and max_per_sec <= 0:
            raise ObservabilityError(
                f"max_per_sec must be > 0 (or None to disable), got {max_per_sec}"
            )
        self._capacity = capacity
        self._max_per_sec = max_per_sec
        self._clock = clock
        self._lock = threading.Lock()
        self._records: List[Dict[str, object]] = []
        self._tokens = float(max_per_sec) if max_per_sec is not None else 0.0
        self._refilled_at = clock()
        self._dropped: Dict[str, int] = {}
        self._total = 0

    # -- producing ------------------------------------------------------ #
    def log(
        self,
        event: str,
        request_id: Optional[str] = None,
        level: str = "info",
        **fields: object,
    ) -> bool:
        """Record one event; returns ``False`` when rate-limited.

        ``event`` must come from :data:`LOG_EVENTS` and ``level`` from
        :data:`LOG_LEVELS` — producing an off-vocabulary record raises
        immediately rather than failing the downstream schema check.
        """
        if event not in LOG_EVENTS:
            raise ObservabilityError(
                f"unknown log event {event!r}; the repro.log/v1 vocabulary "
                f"is {LOG_EVENTS}"
            )
        if level not in LOG_LEVELS:
            raise ObservabilityError(
                f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
            )
        now = self._clock()
        with self._lock:
            if not self._admit(now):
                self._dropped[event] = self._dropped.get(event, 0) + 1
                return False
            self._append(
                {
                    "schema": LOG_SCHEMA,
                    "ts": float(now),
                    "event": event,
                    "level": level,
                    "request_id": request_id,
                    "fields": {
                        key: _coerce_field(value)
                        for key, value in sorted(fields.items())
                    },
                }
            )
        return True

    def ingest(self, record: Dict[str, object]) -> None:
        """Append a pre-formed record from another process (a shard
        worker's shipped events).  Not rate-limited — the producer
        already paid admission on its side; the ring bound still holds.
        """
        with self._lock:
            self._append(dict(record))

    # -- reading -------------------------------------------------------- #
    def records(self) -> List[Dict[str, object]]:
        """A snapshot copy of the buffered records, oldest first."""
        with self._lock:
            return [dict(r) for r in self._records]

    def drain(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Remove and return up to ``limit`` oldest records (all when
        ``None``) — how a shard worker ships events with its replies
        without re-sending history."""
        with self._lock:
            take = len(self._records) if limit is None else max(0, limit)
            taken = self._records[:take]
            del self._records[:take]
            return taken

    def dropped(self) -> Dict[str, int]:
        """Rate-limiter drop counts per event name."""
        with self._lock:
            return dict(self._dropped)

    def total_logged(self) -> int:
        """Records admitted since construction (drops excluded)."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- exporting ------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """One JSON object per record, oldest first."""
        lines = [json.dumps(r, sort_keys=True) for r in self.records()]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: object) -> None:
        with open(path, "w", encoding="utf-8") as fh:  # type: ignore[call-overload]
            fh.write(self.to_jsonl())

    # -- internals (caller holds the lock) ------------------------------ #
    def _admit(self, now: float) -> bool:
        if self._max_per_sec is None:
            return True
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(
            float(self._max_per_sec),
            self._tokens + elapsed * self._max_per_sec,
        )
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True

    def _append(self, record: Dict[str, object]) -> None:
        self._records.append(record)
        self._total += 1
        excess = len(self._records) - self._capacity
        if excess > 0:
            del self._records[:excess]


# --------------------------------------------------------------------- #
# Wire codecs (builtin types only — RLE103 checks this module)          #
# --------------------------------------------------------------------- #
def encode_event(record: Dict[str, object]) -> EventWire:
    """A record as a builtin-typed wire tuple for the shard pipe."""
    fields = record.get("fields") or {}
    if not isinstance(fields, dict):
        fields = {}
    request_id = record.get("request_id")
    return (
        float(record.get("ts", 0.0)),  # type: ignore[arg-type]
        str(record.get("event", "")),
        str(record.get("level", "info")),
        None if request_id is None else str(request_id),
        tuple(
            (str(key), _coerce_field(value))
            for key, value in sorted(fields.items())
        ),
    )


def decode_event(wire: EventWire) -> Dict[str, object]:
    ts, event, level, request_id, field_items = wire
    return {
        "schema": LOG_SCHEMA,
        "ts": float(ts),
        "event": str(event),
        "level": str(level),
        "request_id": None if request_id is None else str(request_id),
        "fields": {str(key): value for key, value in field_items},
    }
