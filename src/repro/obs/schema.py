"""Structural schema validation for the observability documents.

The container bakes in no JSON-schema library, so the three document
shapes the layer emits — metrics JSON, Chrome trace-event JSON and the
profile convergence JSON — are validated by hand-rolled structural
checkers.  They are deliberately strict: CI runs them against the
output of ``repro profile`` on every push, so a producer that drifts
from the documented shape fails the build rather than silently breaking
downstream dashboards.

All validators raise :class:`~repro.errors.ObservabilityError` with a
JSON-pointer-style path to the offending node.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "validate_metrics_json",
    "validate_chrome_trace",
    "validate_nested",
    "validate_profile_json",
    "validate_log_record",
    "validate_log_lines",
]

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _fail(path: str, message: str) -> None:
    raise ObservabilityError(f"schema violation at {path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _require_keys(obj: Dict, keys: Sequence[str], path: str) -> None:
    _require(isinstance(obj, dict), path, f"expected object, got {type(obj).__name__}")
    missing = [k for k in keys if k not in obj]
    _require(not missing, path, f"missing keys {missing}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# --------------------------------------------------------------------- #
# Metrics JSON (MetricsRegistry.to_json)                                #
# --------------------------------------------------------------------- #
def validate_metrics_json(doc: Dict) -> None:
    """Validate a ``repro.metrics/v1`` document."""
    _require_keys(doc, ("schema", "metrics"), "$")
    _require(
        doc["schema"] == "repro.metrics/v1",
        "$.schema",
        f"expected 'repro.metrics/v1', got {doc['schema']!r}",
    )
    metrics = doc["metrics"]
    _require(isinstance(metrics, list), "$.metrics", "expected array")
    seen: set = set()
    for i, fam in enumerate(metrics):
        path = f"$.metrics[{i}]"
        _require_keys(fam, ("name", "kind", "help", "labelnames", "series"), path)
        _require(
            isinstance(fam["name"], str) and fam["name"],
            f"{path}.name", "expected non-empty string",
        )
        _require(
            fam["name"] not in seen, f"{path}.name", f"duplicate metric {fam['name']!r}"
        )
        seen.add(fam["name"])
        _require(
            fam["kind"] in _METRIC_KINDS,
            f"{path}.kind", f"expected one of {_METRIC_KINDS}, got {fam['kind']!r}",
        )
        labelnames = fam["labelnames"]
        _require(
            isinstance(labelnames, list)
            and all(isinstance(n, str) for n in labelnames),
            f"{path}.labelnames", "expected array of strings",
        )
        _require(isinstance(fam["series"], list), f"{path}.series", "expected array")
        for j, series in enumerate(fam["series"]):
            _validate_series(series, fam["kind"], labelnames, f"{path}.series[{j}]")


def _validate_series(series: Dict, kind: str, labelnames: List[str], path: str) -> None:
    _require_keys(series, ("labels",), path)
    labels = series["labels"]
    _require(isinstance(labels, dict), f"{path}.labels", "expected object")
    _require(
        sorted(labels) == sorted(labelnames),
        f"{path}.labels",
        f"label keys {sorted(labels)} != declared {sorted(labelnames)}",
    )
    if kind == "histogram":
        _require_keys(series, ("buckets", "sum", "count"), path)
        buckets = series["buckets"]
        _require(
            isinstance(buckets, list) and buckets, f"{path}.buckets", "expected non-empty array"
        )
        total = 0
        for k, bucket in enumerate(buckets):
            bpath = f"{path}.buckets[{k}]"
            _require_keys(bucket, ("le", "count"), bpath)
            _require(
                _is_number(bucket["le"]) or bucket["le"] == "+Inf",
                f"{bpath}.le", "expected number or '+Inf'",
            )
            _require(
                isinstance(bucket["count"], int) and bucket["count"] >= 0,
                f"{bpath}.count", "expected non-negative integer",
            )
            total += bucket["count"]
        _require(
            buckets[-1]["le"] == "+Inf", f"{path}.buckets[-1].le", "last bucket must be '+Inf'"
        )
        _require(_is_number(series["sum"]), f"{path}.sum", "expected number")
        _require(
            isinstance(series["count"], int) and series["count"] == total,
            f"{path}.count",
            f"count {series['count']!r} != sum of bucket counts {total}",
        )
    else:
        _require_keys(series, ("value",), path)
        _require(_is_number(series["value"]), f"{path}.value", "expected number")
        if kind == "counter":
            _require(series["value"] >= 0, f"{path}.value", "counter went negative")


# --------------------------------------------------------------------- #
# Chrome trace-event JSON (Tracer.to_chrome_trace)                      #
# --------------------------------------------------------------------- #
def validate_chrome_trace(doc: Dict, required_names: Sequence[str] = ()) -> None:
    """Validate a ``repro.trace/v1`` Chrome trace-event document.

    ``required_names`` optionally asserts that specific span names are
    present — the CI smoke check requires the nested
    ``image_diff`` → ``row_batch`` → ``step`` chain.
    """
    _require_keys(doc, ("schema", "traceEvents"), "$")
    _require(
        doc["schema"] == "repro.trace/v1",
        "$.schema", f"expected 'repro.trace/v1', got {doc['schema']!r}",
    )
    events = doc["traceEvents"]
    _require(isinstance(events, list), "$.traceEvents", "expected array")
    for i, event in enumerate(events):
        path = f"$.traceEvents[{i}]"
        _require_keys(event, ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"), path)
        _require(
            isinstance(event["name"], str) and event["name"],
            f"{path}.name", "expected non-empty string",
        )
        _require(event["ph"] == "X", f"{path}.ph", "expected complete event ('X')")
        for key in ("ts", "dur"):
            _require(
                _is_number(event[key]) and event[key] >= 0,
                f"{path}.{key}", "expected non-negative number (microseconds)",
            )
        for key in ("pid", "tid"):
            _require(
                isinstance(event[key], int), f"{path}.{key}", "expected integer"
            )
        _require(isinstance(event["args"], dict), f"{path}.args", "expected object")
    names = {e["name"] for e in events}
    for name in required_names:
        _require(
            name in names, "$.traceEvents", f"no span named {name!r} in trace"
        )


def validate_nested(doc: Dict, outer: str, inner: str) -> None:
    """Assert at least one ``inner`` span lies within an ``outer`` span's
    interval — how the smoke check proves image → row-batch → step
    nesting from a rendered trace alone."""
    events = doc["traceEvents"]
    outers = [e for e in events if e["name"] == outer]
    inners = [e for e in events if e["name"] == inner]
    for child in inners:
        for parent in outers:
            if (
                child["ts"] >= parent["ts"] - 1e-6
                and child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6
            ):
                return
    _fail("$.traceEvents", f"no {inner!r} span nested inside a {outer!r} span")


# --------------------------------------------------------------------- #
# Structured log records (StructuredLog / repro.log/v1)                 #
# --------------------------------------------------------------------- #
def validate_log_record(record: Dict, path: str = "$") -> None:
    """Validate one ``repro.log/v1`` structured log record.

    The vocabulary (events, levels) is imported from
    :mod:`repro.obs.log` so producer and validator cannot drift.
    """
    from repro.obs.log import LOG_EVENTS, LOG_LEVELS, LOG_SCHEMA

    _require_keys(
        record, ("schema", "ts", "event", "level", "request_id", "fields"), path
    )
    _require(
        record["schema"] == LOG_SCHEMA,
        f"{path}.schema", f"expected {LOG_SCHEMA!r}, got {record['schema']!r}",
    )
    _require(
        _is_number(record["ts"]) and record["ts"] >= 0,
        f"{path}.ts", "expected non-negative number (unix seconds)",
    )
    _require(
        record["event"] in LOG_EVENTS,
        f"{path}.event",
        f"expected one of {LOG_EVENTS}, got {record['event']!r}",
    )
    _require(
        record["level"] in LOG_LEVELS,
        f"{path}.level",
        f"expected one of {LOG_LEVELS}, got {record['level']!r}",
    )
    request_id = record["request_id"]
    _require(
        request_id is None or (isinstance(request_id, str) and request_id),
        f"{path}.request_id", "expected null or non-empty string",
    )
    fields = record["fields"]
    _require(isinstance(fields, dict), f"{path}.fields", "expected object")
    for key, value in fields.items():
        _require(
            isinstance(key, str) and bool(key),
            f"{path}.fields", f"field key {key!r} is not a non-empty string",
        )
        _require(
            value is None or isinstance(value, (bool, int, float, str)),
            f"{path}.fields.{key}",
            f"expected JSON scalar, got {type(value).__name__}",
        )


def validate_log_lines(text: str) -> int:
    """Validate a JSONL log document line by line; returns the number
    of records checked.  Blank lines are ignored (trailing newline)."""
    import json

    checked = 0
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        path = f"$.line[{i}]"
        try:
            record = json.loads(line)
        except ValueError as exc:
            _fail(path, f"not valid JSON: {exc}")
        _require(isinstance(record, dict), path, "expected object")
        validate_log_record(record, path)
        checked += 1
    return checked


# --------------------------------------------------------------------- #
# Profile convergence JSON (EngineProfiler.to_dict)                     #
# --------------------------------------------------------------------- #
def validate_profile_json(doc: Dict) -> None:
    """Validate a ``repro.profile/v1`` convergence document.

    Beyond shape, this checks the paper-derived monotonicity
    properties: steps strictly increase, lanes only terminate
    (``active_lanes`` non-increasing), and the Corollary-1.1 front
    (``empty_prefix``) never moves left.
    """
    _require_keys(doc, ("schema", "iterations", "samples"), "$")
    _require(
        doc["schema"] == "repro.profile/v1",
        "$.schema", f"expected 'repro.profile/v1', got {doc['schema']!r}",
    )
    samples = doc["samples"]
    _require(isinstance(samples, list), "$.samples", "expected array")
    _require(
        doc["iterations"] == len(samples),
        "$.iterations", f"iterations {doc['iterations']!r} != {len(samples)} samples",
    )
    previous = None
    for i, sample in enumerate(samples):
        path = f"$.samples[{i}]"
        _require_keys(
            sample,
            ("step", "active_lanes", "busy_cells", "empty_prefix", "empty_prefix_mean"),
            path,
        )
        for key in ("step", "active_lanes", "busy_cells", "empty_prefix"):
            _require(
                isinstance(sample[key], int) and sample[key] >= 0,
                f"{path}.{key}", "expected non-negative integer",
            )
        _require(
            _is_number(sample["empty_prefix_mean"]) and sample["empty_prefix_mean"] >= 0,
            f"{path}.empty_prefix_mean", "expected non-negative number",
        )
        if previous is not None:
            _require(
                sample["step"] > previous["step"], f"{path}.step", "steps must increase"
            )
            _require(
                sample["active_lanes"] <= previous["active_lanes"],
                f"{path}.active_lanes",
                "lanes only terminate — active_lanes may never grow",
            )
            _require(
                sample["empty_prefix"] >= previous["empty_prefix"],
                f"{path}.empty_prefix",
                "the Corollary-1.1 front never moves left",
            )
        previous = sample
