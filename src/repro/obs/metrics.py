"""Metrics: named counters, gauges and fixed-bucket histograms.

The paper's claims are quantitative — Theorem 1's ``k1 + k2`` iteration
bound, Table 1's run counts — so the repo measures everything it does
through one registry instead of ad-hoc counter bags and scattered
``perf_counter`` calls.  Three metric kinds, all label-aware:

``counter``
    Monotonically increasing totals (rows differenced, iterations run,
    activity events).
``gauge``
    Last-written values (batch width, active worker count).
``histogram``
    Fixed-bucket distributions (per-row iteration counts) — buckets are
    upper bounds, cumulated only at export time.

Design constraints inherited from the rest of the repo:

* **Picklable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
  :class:`MetricsSnapshot` built from frozen dataclasses of builtin
  types, so :mod:`repro.core.parallel` workers can export their metrics
  across the process boundary and the pool merges them
  (:meth:`MetricsRegistry.merge_snapshot`) — totals match the serial
  path exactly, which the equivalence tests assert.
* **No ambient global registry.**  Registries are always passed
  explicitly (rule RLE005: module-level mutable state diverges silently
  between forked workers).
* **Zero cost when off.**  Every producer takes ``metrics=None`` and
  records only behind an ``is not None`` check.

Exporters: :meth:`MetricsRegistry.to_json` (machine-readable document,
validated by :func:`repro.obs.schema.validate_metrics_json`) and
:meth:`MetricsRegistry.to_prometheus_text` (Prometheus textfile format
for node-exporter style scraping).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "ITERATION_BUCKETS",
    "LATENCY_BUCKETS_S",
    "quantile_from_buckets",
    "CounterBag",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "SeriesSnapshot",
    "FamilySnapshot",
    "MetricsSnapshot",
    "MetricsRegistry",
    "record_image_diff",
]

#: General-purpose histogram buckets (upper bounds; +inf is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: Buckets sized for per-row systolic iteration counts: Figure 5 rows
#: terminate in a handful of iterations, Table 1's densest pairings in a
#: few hundred.
ITERATION_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Request-latency buckets in seconds, log-spaced from 100µs to 10s —
#: the ``repro_request_latency_seconds`` families at the sharded
#: front-end and in each shard worker share these bounds so worker
#: cells merge into the fleet histogram without resampling.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def quantile_from_buckets(
    bounds: Sequence[float], bucket_counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket distribution.

    Classic Prometheus-style estimation: find the bucket the target
    rank lands in and interpolate linearly inside it (lower edge 0.0
    for the first bucket).  Observations in the +inf overflow bucket
    clamp to the last finite bound — the estimator never invents a
    value beyond what the bucket layout can resolve.  An empty
    histogram yields 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
    if len(bucket_counts) != len(bounds) + 1:
        raise ObservabilityError(
            f"expected {len(bounds) + 1} bucket cells (bounds + overflow), "
            f"got {len(bucket_counts)}"
        )
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, cell in enumerate(bucket_counts):
        if cell == 0:
            continue
        if cumulative + cell >= target:
            if i >= len(bounds):  # +inf overflow: clamp to last bound
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            fraction = max(0.0, (target - cumulative) / cell)
            return lower + (upper - lower) * fraction
        cumulative += cell
    return float(bounds[-1])


class CounterBag:
    """A minimal named-counter bag — the primitive under both
    :class:`~repro.systolic.stats.ActivityStats` and the labelled
    counters here.

    Dict-backed, picklable, and cheap enough for the engines' per-step
    accounting.  Zero increments are dropped so a counter that never
    fired is *absent* — keeps bags comparable across engines that
    evaluate counters eagerly (vectorized reductions) vs. lazily (per
    event).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts) if counts else {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when 0)."""
        if amount:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def items(self) -> Tuple[Tuple[str, int], ...]:
        """Sorted ``(name, count)`` tuples — the picklable wire form."""
        return tuple(sorted(self._counts.items()))

    def merge_into(self, other: "CounterBag") -> None:
        """Add ``other``'s counts into this bag in place."""
        for name, count in other._counts.items():
            self.bump(name, count)

    def clear(self) -> None:
        self._counts.clear()


# --------------------------------------------------------------------- #
# Snapshots — frozen builtin-typed wire forms                            #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeriesSnapshot:
    """One labelled series.  ``value`` carries counters/gauges;
    histograms use ``bucket_counts``/``sum``/``count``."""

    labels: Tuple[str, ...]
    value: float = 0.0
    bucket_counts: Tuple[int, ...] = ()
    sum: float = 0.0
    count: int = 0


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family: kind, metadata and its sorted series."""

    kind: str
    name: str
    help: str
    labelnames: Tuple[str, ...]
    buckets: Tuple[float, ...] = ()
    series: Tuple[SeriesSnapshot, ...] = ()


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable, mergeable point-in-time copy of a registry."""

    families: Tuple[FamilySnapshot, ...] = ()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Sum two snapshots (counters and histograms add; gauges take
        ``other``'s value, last-write-wins)."""
        registry = MetricsRegistry.from_snapshot(self)
        registry.merge_snapshot(other)
        return registry.snapshot()

    def counter_total(self, name: str, **labels: str) -> float:
        """Sum of counter family ``name``'s series whose labels include
        the given subset (all series when no labels are given).

        The cross-process sanity check of the sharded tier: the
        front-end's merged snapshot must report the same totals as the
        sum over per-worker snapshots, and this is the accessor both
        sides use.  Returns ``0.0`` for absent families — a worker that
        never fired a counter simply contributes nothing.
        """
        total = 0.0
        for family in self.families:
            if family.name != name or family.kind != "counter":
                continue
            for series in family.series:
                have = dict(zip(family.labelnames, series.labels))
                if all(have.get(key) == value for key, value in labels.items()):
                    total += series.value
        return total

    def histogram_quantile(self, name: str, q: float, **labels: str) -> float:
        """Estimated ``q``-quantile over histogram family ``name``,
        pooling the cells of every series whose labels include the
        given subset (see :func:`quantile_from_buckets`).

        This is the merged-fleet view: the front-end folds worker
        snapshots and asks one question — "what was p99 across all
        shards?" — without shipping raw observations.  Returns ``0.0``
        for absent families or when nothing matched.
        """
        bounds: Tuple[float, ...] = ()
        pooled: List[int] = []
        for family in self.families:
            if family.name != name or family.kind != "histogram":
                continue
            bounds = family.buckets
            for series in family.series:
                have = dict(zip(family.labelnames, series.labels))
                if not all(have.get(k) == v for k, v in labels.items()):
                    continue
                if not pooled:
                    pooled = list(series.bucket_counts)
                else:
                    for i, cell in enumerate(series.bucket_counts):
                        pooled[i] += cell
        if not bounds or not pooled:
            return 0.0
        return quantile_from_buckets(bounds, pooled, q)


# --------------------------------------------------------------------- #
# Live metric instances                                                 #
# --------------------------------------------------------------------- #
class Counter:
    """A monotonically increasing total.

    Mutation is locked: series are bumped concurrently — the batcher's
    worker thread and caller threads share ``repro_service_requests_total``
    — and an unsynchronized ``+=`` loses increments under bytecode
    interleaving (RLE102).
    """

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; inc({amount}) is negative"
            )
        with self._lock:
            self.value += amount

    def read(self) -> float:
        """The current total, sampled under the lock."""
        with self._lock:
            return self.value


class Gauge:
    """A last-written value (mutation locked, like :class:`Counter`)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def read(self) -> float:
        """The current value, sampled under the lock."""
        with self._lock:
            return self.value


class Histogram:
    """A fixed-bucket distribution.

    ``buckets`` are strictly increasing upper bounds; an implicit +inf
    bucket catches the overflow.  Counts are stored per bucket
    (non-cumulative) and cumulated only by the Prometheus exporter.
    Mutation and snapshotting are locked so ``sum``/``count`` and the
    bucket cells never tear against a concurrent :meth:`observe`.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count", "_lock")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {bounds}"
            )
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1

    def merge_series(
        self, bucket_counts: Sequence[int], sum_: float, count: int
    ) -> None:
        """Fold another series' cells into this one atomically."""
        with self._lock:
            for i, c in enumerate(bucket_counts):
                self.bucket_counts[i] += c
            self.sum += sum_
            self.count += count

    def snap(self) -> Tuple[Tuple[int, ...], float, int]:
        """Consistent ``(bucket_counts, sum, count)`` triple."""
        with self._lock:
            return tuple(self.bucket_counts), self.sum, self.count

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile of the observed distribution
        (see :func:`quantile_from_buckets`) — how ``stats()`` turns a
        latency histogram into p50/p99 numbers."""
        cells, _, _ = self.snap()
        return quantile_from_buckets(self.buckets, cells, q)


class MetricFamily:
    """All series of one metric name, keyed by label values.

    Obtain series with :meth:`labels`; a label-less family proxies the
    single unlabelled series' mutators directly (``family.inc(...)``).
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(float(b) for b in buckets)
        self._series: Dict[Tuple[str, ...], object] = {}
        # guards lazy series insertion and the snapshot iteration; two
        # threads racing labels() on a fresh key must not double-create
        # (one thread's increments would land on the orphaned instance)
        self._lock = threading.Lock()

    def _make(self) -> object:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: str):
        """The series for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._make()
        return series

    # Label-less convenience proxies ----------------------------------- #
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    # Snapshot --------------------------------------------------------- #
    def snapshot(self) -> FamilySnapshot:
        with self._lock:
            items = sorted(self._series.items())
        series: List[SeriesSnapshot] = []
        for key, inst in items:
            if isinstance(inst, Histogram):
                bucket_counts, sum_, count = inst.snap()
                series.append(
                    SeriesSnapshot(
                        labels=key,
                        bucket_counts=bucket_counts,
                        sum=sum_,
                        count=count,
                    )
                )
            else:
                series.append(SeriesSnapshot(labels=key, value=inst.read()))  # type: ignore[union-attr]
        return FamilySnapshot(
            kind=self.kind,
            name=self.name,
            help=self.help,
            labelnames=self.labelnames,
            buckets=self.buckets if self.kind == "histogram" else (),
            series=tuple(series),
        )


class MetricsRegistry:
    """The one place metrics live for a run.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided kind and label names agree (a mismatch
    raises :class:`~repro.errors.ObservabilityError` — silent type
    drift between producers is how metrics rot).
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        # guards the family dict: producers register lazily from worker
        # and caller threads alike (idempotent get-or-create races)
        self._lock = threading.Lock()

    # Registration ----------------------------------------------------- #
    def _register(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}; cannot re-register "
                        f"as {kind} with labels {tuple(labelnames)}"
                    )
                return existing
            family = MetricFamily(kind, name, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register("counter", name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register("histogram", name, help, labelnames, buckets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def family(self, name: str) -> MetricFamily:
        """The registered family called ``name``.

        Raises :class:`~repro.errors.ObservabilityError` for unknown
        names — reading a metric that nothing registered is a test or
        wiring bug, not an empty result.  (The resilience suites use
        this to assert on ``repro_resilience_*`` series without
        re-registering the families themselves.)
        """
        with self._lock:
            family = self._families.get(name)
            present = len(self._families)
        if family is None:
            raise ObservabilityError(
                f"no metric family named {name!r} is registered "
                f"({present} families present)"
            )
        return family

    # Snapshot / merge ------------------------------------------------- #
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        return MetricsSnapshot(
            families=tuple(family.snapshot() for family in families)
        )

    @classmethod
    def from_snapshot(cls, snap: MetricsSnapshot) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snap)
        return registry

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a (possibly remote) snapshot into this registry.

        Counters and histogram cells add; gauges take the snapshot's
        value.  This is how :func:`repro.core.parallel.parallel_diff_images`
        reassembles worker metrics — merged totals match the serial path.
        """
        for fam in snap.families:
            family = self._register(
                fam.kind, fam.name, fam.help, fam.labelnames,
                fam.buckets or DEFAULT_BUCKETS,
            )
            for series in fam.series:
                labels = dict(zip(fam.labelnames, series.labels))
                inst = family.labels(**labels)
                if fam.kind == "counter":
                    inst.inc(series.value)
                elif fam.kind == "gauge":
                    inst.set(series.value)
                else:
                    # bucket structure is fixed at construction, so the
                    # length check needs no lock; the cell merge itself
                    # runs atomically inside the series lock
                    if len(series.bucket_counts) != len(inst.bucket_counts):
                        raise ObservabilityError(
                            f"histogram {fam.name!r}: snapshot has "
                            f"{len(series.bucket_counts)} buckets, registry "
                            f"has {len(inst.bucket_counts)}"
                        )
                    inst.merge_series(
                        series.bucket_counts, series.sum, series.count
                    )

    # Exporters -------------------------------------------------------- #
    def to_json(self) -> Dict:
        """The machine-readable metrics document (see
        :func:`repro.obs.schema.validate_metrics_json`)."""
        metrics: List[Dict] = []
        for fam in self.snapshot().families:
            series: List[Dict] = []
            for s in fam.series:
                entry: Dict = {"labels": dict(zip(fam.labelnames, s.labels))}
                if fam.kind == "histogram":
                    entry["buckets"] = [
                        {"le": le, "count": c}
                        for le, c in zip(list(fam.buckets) + ["+Inf"], s.bucket_counts)
                    ]
                    entry["sum"] = s.sum
                    entry["count"] = s.count
                else:
                    entry["value"] = s.value
                series.append(entry)
            metrics.append(
                {
                    "name": fam.name,
                    "kind": fam.kind,
                    "help": fam.help,
                    "labelnames": list(fam.labelnames),
                    "series": series,
                }
            )
        return {"schema": "repro.metrics/v1", "metrics": metrics}

    def to_prometheus_text(self) -> str:
        """Prometheus textfile exposition format."""
        lines: List[str] = []
        for fam in self.snapshot().families:
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for s in fam.series:
                base = dict(zip(fam.labelnames, s.labels))
                if fam.kind == "histogram":
                    cumulative = 0
                    for le, c in zip(
                        [_format_value(b) for b in fam.buckets] + ["+Inf"],
                        s.bucket_counts,
                    ):
                        cumulative += c
                        lines.append(
                            f"{fam.name}_bucket"
                            f"{_format_labels({**base, 'le': le})} {cumulative}"
                        )
                    lines.append(
                        f"{fam.name}_sum{_format_labels(base)} "
                        f"{_format_value(s.sum)}"
                    )
                    lines.append(f"{fam.name}_count{_format_labels(base)} {s.count}")
                else:
                    lines.append(
                        f"{fam.name}{_format_labels(base)} {_format_value(s.value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# --------------------------------------------------------------------- #
# The engine recording convention                                        #
# --------------------------------------------------------------------- #
def record_image_diff(registry: MetricsRegistry, engine: str, row_results) -> None:
    """Record one image differencing run under the standard metric names.

    Called by the serial pipeline and by every pool worker with the
    *same* names and labels, so merged worker snapshots are directly
    comparable to (and must equal) the serial registry.  Only quantities
    that are invariant to chunking are recorded — ``n_cells`` depends on
    the batch width, so it is deliberately absent.
    """
    rows = registry.counter(
        "repro_rows_total", "image rows differenced", ("engine",)
    )
    iters = registry.counter(
        "repro_iterations_total", "systolic iterations executed", ("engine",)
    )
    runs_out = registry.counter(
        "repro_output_runs_total",
        "raw runs produced (the paper's k3, pre-compaction)",
        ("engine",),
    )
    hist = registry.histogram(
        "repro_row_iterations",
        "per-row systolic iteration distribution",
        ("engine",),
        buckets=ITERATION_BUCKETS,
    )
    activity = registry.counter(
        "repro_activity_total",
        "cell activity events (swaps, moves, xor_splits, shifts, busy_cells)",
        ("engine", "counter"),
    )
    rows.labels(engine=engine).inc(len(row_results))
    row_iters = hist.labels(engine=engine)
    total_iters = iters.labels(engine=engine)
    total_runs = runs_out.labels(engine=engine)
    for result in row_results:
        row_iters.observe(result.iterations)
        total_iters.inc(result.iterations)
        total_runs.inc(result.result.run_count)
        for name, count in result.stats:
            activity.labels(engine=engine, counter=name).inc(count)
