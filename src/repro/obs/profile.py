"""Per-iteration engine profiling — convergence curves from the batch.

Corollary 1.1 says the array drains ``RegBig`` left to right: after
iteration *t*, cells ``1..t`` hold their final ``RegSmall`` contents and
an empty ``RegBig``.  The engines make that *visible in data*: pass an
:class:`EngineProfiler` to :class:`~repro.core.batched.BatchedXorEngine`
(or :class:`~repro.core.vectorized.VectorizedXorEngine`) and every
iteration records

``active_lanes``
    rows still stepping (batched lanes terminate independently — the
    paper's per-row ``k1 + k2`` bound, Theorem 1, shows up as this curve
    hitting zero),
``busy_cells``
    cells holding at least one run anywhere in the batch,
``empty_prefix``
    the Corollary-1.1 front: leftmost column in which *any* lane still
    holds a ``RegBig`` run (monotonically non-decreasing — the schema
    validator checks this), and
``empty_prefix_mean``
    the mean per-lane front over still-active lanes.

Profiling is opt-in (``probe=None`` default) and the per-step sampling
reduces over the register planes, so it costs a few array reductions per
iteration — fine for `repro profile`, not for benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["IterationSample", "EngineProfiler"]


@dataclass(frozen=True)
class IterationSample:
    """One iteration's convergence measurements."""

    step: int
    active_lanes: int
    busy_cells: int
    empty_prefix: int
    empty_prefix_mean: float


@dataclass
class EngineProfiler:
    """Collects per-iteration samples from an engine run."""

    samples: List[IterationSample] = field(default_factory=list)

    def on_step(
        self,
        step: int,
        active_lanes: int,
        busy_cells: int,
        empty_prefix: int,
        empty_prefix_mean: float,
    ) -> None:
        """Engine hook, called once at the end of every iteration."""
        self.samples.append(
            IterationSample(
                step=step,
                active_lanes=active_lanes,
                busy_cells=busy_cells,
                empty_prefix=empty_prefix,
                empty_prefix_mean=empty_prefix_mean,
            )
        )

    def reset(self) -> None:
        self.samples.clear()

    # ------------------------------------------------------------------ #
    @property
    def iterations(self) -> int:
        return len(self.samples)

    def to_dict(self) -> Dict:
        """The machine-readable convergence document (see
        :func:`repro.obs.schema.validate_profile_json`)."""
        return {
            "schema": "repro.profile/v1",
            "iterations": self.iterations,
            "samples": [
                {
                    "step": s.step,
                    "active_lanes": s.active_lanes,
                    "busy_cells": s.busy_cells,
                    "empty_prefix": s.empty_prefix,
                    "empty_prefix_mean": s.empty_prefix_mean,
                }
                for s in self.samples
            ],
        }

    def render_table(self, max_rows: int = 20) -> str:
        """A compact convergence table for terminal output.

        Long runs are decimated to ``max_rows`` evenly spaced samples
        (always keeping the first and last) — the shape of the curve is
        the point, not every step.
        """
        if not self.samples:
            return "(no samples)"
        samples = self.samples
        if len(samples) > max_rows:
            stride = (len(samples) - 1) / (max_rows - 1)
            picked = sorted({round(i * stride) for i in range(max_rows)})
            samples = [self.samples[i] for i in picked]
        header = (
            f"{'step':>6} {'active_lanes':>13} {'busy_cells':>11} "
            f"{'empty_prefix':>13} {'mean_front':>11}"
        )
        lines = [header, "-" * len(header)]
        for s in samples:
            lines.append(
                f"{s.step:>6} {s.active_lanes:>13} {s.busy_cells:>11} "
                f"{s.empty_prefix:>13} {s.empty_prefix_mean:>11.2f}"
            )
        return "\n".join(lines)
