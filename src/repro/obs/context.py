"""Request context: the identity a request carries across processes.

The sharded tier turns one caller-visible request into work on N
processes — the front-end routes row slices to shard workers over the
``(kind, seq, payload)`` pipe protocol, and before this module existed
the request became anonymous the moment it crossed that boundary: a
worker span, a structured log line or a breaker trip could not be tied
back to the request that caused it.

:class:`RequestContext` is the fix — a tiny frozen value generated at
the outermost entry point (:class:`~repro.service.frontend.ShardedServer`
for TCP requests, :class:`~repro.service.frontend.ShardedDiffService` /
:class:`~repro.service.DiffService` for in-process callers) and threaded
through every hop:

* ``request_id`` — 16 hex chars, unique per request, stamped on every
  span (:mod:`repro.obs.tracing`), log record (:mod:`repro.obs.log`)
  and wire reply that the request touches;
* ``parent_id`` — the caller's own trace id when it supplied one (the
  TCP protocol's ``request_id`` field), so an upstream system can join
  our spans into its trace;
* ``sampled`` — whether the fleet should pay for span shipping on this
  request.  Decided *deterministically* from the request id
  (:func:`RequestContext.sample`), so every process agrees without
  coordination and a given id is always either fully traced or not.

The wire form is a builtin-typed tuple (:data:`ContextWire`), matching
the codec discipline of :mod:`repro.service.shard` — rule RLE103
applies to this module too.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "ContextWire",
    "RequestContext",
    "new_request_id",
    "encode_context",
    "decode_context",
]

#: A context on the wire: ``(request_id, parent_id, sampled)``.
ContextWire = Tuple[str, Optional[str], bool]


def new_request_id() -> str:
    """A fresh 16-hex-char request id (64 random bits — collision
    probability is negligible at any realistic request volume)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class RequestContext:
    """One request's identity, valid across process boundaries."""

    #: Unique id of this request (16 hex chars from :func:`new_request_id`).
    request_id: str
    #: The caller's trace id, when it supplied one (``None`` for roots).
    parent_id: Optional[str] = None
    #: Whether spans for this request are recorded and shipped.
    sampled: bool = True

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ObservabilityError("request_id must be a non-empty string")

    @classmethod
    def new(
        cls, parent_id: Optional[str] = None, sample_rate: float = 1.0
    ) -> "RequestContext":
        """A fresh context; ``sample_rate`` decides span shipping via
        :meth:`sample` so the decision is a pure function of the id."""
        request_id = new_request_id()
        return cls(
            request_id=request_id,
            parent_id=parent_id,
            sampled=cls.sample(request_id, sample_rate),
        )

    @staticmethod
    def sample(request_id: str, rate: float) -> bool:
        """Deterministic sampling decision for ``request_id``.

        Hashes the first 8 hex chars into [0, 1) and compares against
        ``rate`` — every process that sees the id reaches the same
        verdict, so a trace is never half-shipped.
        """
        if not 0.0 <= rate <= 1.0:
            raise ObservabilityError(
                f"sample rate must be in [0, 1], got {rate}"
            )
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        try:
            bucket = int(request_id[:8], 16)
        except ValueError:
            bucket = sum(request_id.encode("utf-8", "replace")) * 2654435761
        return (bucket % 0x1_0000_0000) / float(0x1_0000_0000) < rate


def encode_context(ctx: RequestContext) -> ContextWire:
    """The builtin-typed wire form (see RLE103 — no class instances,
    no NumPy, cross the boundary)."""
    return (
        str(ctx.request_id),
        None if ctx.parent_id is None else str(ctx.parent_id),
        bool(ctx.sampled),
    )


def decode_context(wire: ContextWire) -> RequestContext:
    request_id, parent_id, sampled = wire
    return RequestContext(
        request_id=request_id, parent_id=parent_id, sampled=sampled
    )
