"""Span tracing with JSONL and Chrome trace-event export.

A :class:`Tracer` records nested, attributed spans around the hot
operations — ``image_diff`` dispatch, the batched engine's step loop,
``measure_row_phases``, pool worker chunks, and the inspection
pipeline's align/diff/extract stages.  Finished spans export as JSONL
(one object per line, grep-friendly) or as Chrome trace-event JSON
(complete ``"X"`` events) that loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

The disabled path must cost nothing: every instrumented call site takes
``tracer=None`` and branches once on it, and :data:`NULL_TRACER` — for
callers that want to thread a tracer unconditionally — answers
:meth:`span` with a shared no-op span, so a disabled span costs one
attribute lookup and one call.  ``benchmarks/bench_obs_overhead.py``
keeps that claim honest.

Span taxonomy (see docs/OBSERVABILITY.md for the full catalogue):

====================  ================================================
``image_diff``        one whole-image differencing call
``row_batch``         one :class:`BatchedXorEngine` batch run
``step``              one systolic iteration of a batch
``row``               one row diffed by a per-row engine loop
``measure_row_phases``  the timing model's measurement pass
``parallel_diff``     one pool-parallel image diff (parent side)
``chunk``             one worker chunk (duration measured in-worker)
``inspect`` / ``align`` / ``diff`` / ``extract``  inspection stages
====================  ================================================

Tracers are single-process, single-threaded objects; worker processes
measure durations locally and the parent re-records them via
:meth:`Tracer.record_span`.  The sharded tier goes one step further:
shard workers ship measured spans back inside their replies, the
front-end re-records them with ``lane=k+1`` (its own spans stay on lane
0), and :class:`TraceStore` keeps the stitched per-request span sets the
``{"op": "trace"}`` server op serves — one request, one timeline, N
processes side by side in Perfetto.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "TraceStore",
    "spans_to_chrome_trace",
    "NullSpan",
    "NullTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.  Times are seconds relative to the tracer's
    epoch (its construction time)."""

    span_id: int
    parent_id: int  # -1 = root
    name: str
    start: float
    duration: float
    attributes: Dict[str, object] = field(default_factory=dict)
    #: Rendering lane: 0 = the recording process itself; the sharded
    #: front-end re-records worker ``k``'s spans with ``lane=k+1`` so
    #: the Chrome export (``tid = lane + 1``) shows each process on its
    #: own track of one shared timeline.
    lane: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration


class Span:
    """A live span; use as a context manager.

    Attributes set at open time (``tracer.span("step", index=3)``) or
    later via :meth:`set_attribute` land in the record's ``attributes``.
    """

    __slots__ = ("_tracer", "_span_id", "_parent_id", "name", "attributes", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int,
        name: str,
        attributes: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._span_id = span_id
        self._parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self._start = 0.0

    def set_attribute(self, name: str, value: object) -> None:
        self.attributes[name] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack.append(self._span_id)
        self._start = tracer._clock() - tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer._clock() - tracer._epoch
        if not tracer._stack or tracer._stack[-1] != self._span_id:
            raise ObservabilityError(
                f"span {self.name!r} exited out of order (spans must nest)"
            )
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self.name,
                start=self._start,
                duration=end - self._start,
                attributes=self.attributes,
            )
        )
        return False


class Tracer:
    """Collects spans for one process/run.

    Parameters
    ----------
    clock:
        Monotonic second-resolution clock; defaults to
        :func:`time.perf_counter`.  Injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self._next_id = 0
        self._stack: List[int] = []
        self.spans: List[SpanRecord] = []

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes: object) -> Span:
        """Open a nested span: ``with tracer.span("step", index=i): ...``"""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else -1
        return Span(self, span_id, parent_id, name, dict(attributes))

    def record_span(
        self, name: str, duration_s: float, *, lane: int = 0, **attributes: object
    ) -> SpanRecord:
        """Record an already-measured span (ending now).

        Pool workers time their chunks with a local clock; the parent
        re-records the reported durations here so they appear on the
        main trace timeline.  Cross-process callers (the sharded
        front-end) pass ``lane`` to place the span on the originating
        worker's track — only the duration crosses the wire, so clock
        skew between processes never distorts the timeline.
        """
        span_id = self._next_id
        self._next_id += 1
        end = self._clock() - self._epoch
        record = SpanRecord(
            span_id=span_id,
            parent_id=self._stack[-1] if self._stack else -1,
            name=name,
            start=max(0.0, end - duration_s),
            duration=duration_s,
            attributes=dict(attributes),
            lane=lane,
        )
        self.spans.append(record)
        return record

    # ------------------------------------------------------------------ #
    def durations(self, *names: str) -> Dict[str, float]:
        """Total recorded seconds per span name (filtered to ``names``
        when given) — how the inspection pipeline derives its
        ``stage_seconds`` without hand-rolled timing."""
        totals: Dict[str, float] = {}
        for record in self.spans:
            if names and record.name not in names:
                continue
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    # Exporters -------------------------------------------------------- #
    def to_jsonl(self) -> str:
        """One JSON object per finished span, in completion order."""
        lines = [
            json.dumps(
                {
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                    "name": r.name,
                    "start_s": r.start,
                    "duration_s": r.duration,
                    "attributes": r.attributes,
                },
                sort_keys=True,
            )
            for r in self.spans
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> Dict:
        """Chrome trace-event JSON (complete events), Perfetto-loadable.

        Timestamps and durations are microseconds per the trace-event
        spec.  Single-process spans all carry ``lane=0`` and land on one
        track (``tid=1``, exactly the pre-sharding layout); spans
        re-recorded from shard workers render on ``tid = lane + 1`` so N
        processes share one timeline without overlapping.
        """
        return spans_to_chrome_trace(self.spans)

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


def spans_to_chrome_trace(spans: Sequence[SpanRecord]) -> Dict:
    """Render finished spans as a ``repro.trace/v1`` document
    (shared by :meth:`Tracer.to_chrome_trace` and :class:`TraceStore`)."""
    events = [
        {
            "name": r.name,
            "cat": "repro",
            "ph": "X",
            "ts": r.start * 1e6,
            "dur": r.duration * 1e6,
            "pid": 1,
            "tid": r.lane + 1,
            "args": dict(r.attributes),
        }
        for r in spans
    ]
    return {"schema": "repro.trace/v1", "traceEvents": events}


class TraceStore:
    """A bounded, thread-safe store of stitched per-request span sets.

    The sharded front-end finishes a request with spans from up to N+1
    processes already re-recorded onto one timeline; this store indexes
    those finished sets by request id so the ``{"op": "trace"}`` server
    op (and tests) can fetch one request's distributed trace after the
    fact.  Capacity-bounded: the oldest requests are evicted first.

    Mutation and reads run under the instance lock — the TCP server's
    executor threads and the caller thread share one store (RLE101).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        # insertion-ordered dict doubles as the eviction queue
        self._traces: Dict[str, List[SpanRecord]] = {}

    def add(self, request_id: str, spans: Sequence[SpanRecord]) -> None:
        """Append ``spans`` under ``request_id`` (evicting the oldest
        request if this id is new and the store is full)."""
        if not request_id:
            raise ObservabilityError("request_id must be a non-empty string")
        with self._lock:
            existing = self._traces.get(request_id)
            if existing is None:
                while len(self._traces) >= self._capacity:
                    self._traces.pop(next(iter(self._traces)))
                self._traces[request_id] = list(spans)
            else:
                existing.extend(spans)

    def get(self, request_id: str) -> List[SpanRecord]:
        """The stored spans for ``request_id`` (empty when unknown)."""
        with self._lock:
            return list(self._traces.get(request_id, ()))

    def request_ids(self) -> List[str]:
        """Stored request ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def to_chrome_trace(self, request_id: Optional[str] = None) -> Dict:
        """One request's stitched trace, or every stored span when
        ``request_id`` is ``None``."""
        with self._lock:
            if request_id is None:
                spans = [s for trace in self._traces.values() for s in trace]
            else:
                spans = list(self._traces.get(request_id, ()))
        return spans_to_chrome_trace(spans)


class NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    def set_attribute(self, name: str, value: object) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """Tracing disabled: every call answers the shared no-op span.

    ``span()`` is one attribute access plus returning a preallocated
    object — the overhead benchmark pins this.
    """

    __slots__ = ()
    enabled = False

    _NULL_SPAN = NullSpan()

    def span(self, name: str, **attributes: object) -> NullSpan:
        return self._NULL_SPAN

    def record_span(
        self, name: str, duration_s: float, *, lane: int = 0, **attributes: object
    ) -> None:
        return None

    def durations(self, *names: str) -> Dict[str, float]:
        return {}


#: The shared disabled tracer — thread this where ``None`` is awkward.
NULL_TRACER = NullTracer()
