"""repro.obs — the unified observability layer.

Five pillars, one import:

* :mod:`repro.obs.metrics` — a labelled metrics registry (counters,
  gauges, fixed-bucket histograms with quantile estimation) with
  picklable snapshot/merge and JSON + Prometheus-textfile exporters;
* :mod:`repro.obs.tracing` — nested span tracing with JSONL and Chrome
  trace-event (Perfetto) export, a :class:`~repro.obs.tracing.TraceStore`
  for stitched cross-process request traces, plus a no-op null tracer
  whose disabled path costs one attribute lookup;
* :mod:`repro.obs.log` — bounded, rate-limited structured JSONL event
  logging (``repro.log/v1``) for the serving tier's lifecycle events;
* :mod:`repro.obs.context` — the :class:`~repro.obs.context.RequestContext`
  identity a request carries across the sharded tier's process
  boundaries (deterministically sampled);
* :mod:`repro.obs.profile` — opt-in per-iteration engine sampling that
  turns Corollary 1.1's empty-prefix front into convergence curves.

Every later scaling PR (sharding, async serving) reports through this
layer; see docs/OBSERVABILITY.md for metric names, the span taxonomy
and exporter formats.
"""

from repro.obs.context import RequestContext, new_request_id
from repro.obs.log import StructuredLog
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    CounterBag,
    MetricsRegistry,
    MetricsSnapshot,
    quantile_from_buckets,
    record_image_diff,
)
from repro.obs.profile import EngineProfiler, IterationSample
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    TraceStore,
)

__all__ = [
    "CounterBag",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "MetricsSnapshot",
    "quantile_from_buckets",
    "record_image_diff",
    "EngineProfiler",
    "IterationSample",
    "RequestContext",
    "new_request_id",
    "StructuredLog",
    "Tracer",
    "TraceStore",
    "Span",
    "SpanRecord",
    "NullTracer",
    "NULL_TRACER",
]
