"""repro.obs — the unified observability layer.

Three pillars, one import:

* :mod:`repro.obs.metrics` — a labelled metrics registry (counters,
  gauges, fixed-bucket histograms) with picklable snapshot/merge and
  JSON + Prometheus-textfile exporters;
* :mod:`repro.obs.tracing` — nested span tracing with JSONL and Chrome
  trace-event (Perfetto) export, plus a no-op null tracer whose
  disabled path costs one attribute lookup;
* :mod:`repro.obs.profile` — opt-in per-iteration engine sampling that
  turns Corollary 1.1's empty-prefix front into convergence curves.

Every later scaling PR (sharding, async serving) reports through this
layer; see docs/OBSERVABILITY.md for metric names, the span taxonomy
and exporter formats.
"""

from repro.obs.metrics import (
    CounterBag,
    MetricsRegistry,
    MetricsSnapshot,
    record_image_diff,
)
from repro.obs.profile import EngineProfiler, IterationSample
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "CounterBag",
    "MetricsRegistry",
    "MetricsSnapshot",
    "record_image_diff",
    "EngineProfiler",
    "IterationSample",
    "Tracer",
    "Span",
    "SpanRecord",
    "NullTracer",
    "NULL_TRACER",
]
