"""Defect extraction from a difference image.

The raw XOR marks every differing pixel; inspection needs *defects* —
connected blobs of difference, grouped across small gaps (a single
mousebite produces several nearby difference fragments), sized, and
classified by geometry.  Everything operates on RLE via the
compressed-domain morphology and component labeling substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.rle.components import Component, label_components
from repro.rle.image import RLEImage
from repro.rle.morphology import dilate_image
from repro.rle.ops2d import sub_images

__all__ = ["DefectBlob", "find_defect_blobs", "classify_blob"]


@dataclass
class DefectBlob:
    """One detected defect region."""

    #: Bounding box (top, left, bottom, right), inclusive.
    bbox: Tuple[int, int, int, int]
    #: Differing pixels inside the blob.
    area: int
    #: Pixel-mass centroid (y, x).
    centroid: Tuple[float, float]
    #: Differing pixels that are set in the scan but not the reference.
    extra_pixels: int
    #: Differing pixels that are set in the reference but not the scan.
    missing_pixels: int
    #: Geometric classification (see :func:`classify_blob`).
    kind: str = "unknown"

    @property
    def height(self) -> int:
        return self.bbox[2] - self.bbox[0] + 1

    @property
    def width(self) -> int:
        return self.bbox[3] - self.bbox[1] + 1

    @property
    def polarity(self) -> str:
        """``extra`` / ``missing`` / ``mixed`` copper."""
        if self.extra_pixels and not self.missing_pixels:
            return "extra"
        if self.missing_pixels and not self.extra_pixels:
            return "missing"
        return "mixed"


def classify_blob(blob: DefectBlob) -> str:
    """Geometric defect classification.

    The heuristics mirror the synthetic injector's taxonomy
    (:mod:`repro.workloads.pcb`): polarity separates copper-missing from
    copper-extra classes, then size/aspect picks within each.
    """
    h, w = blob.height, blob.width
    if blob.polarity == "missing":
        if blob.area <= 4:
            return "pinhole"
        if w >= 2 * h:
            return "open"
        return "mousebite"
    if blob.polarity == "extra":
        if h >= 2 * w and h >= 6:
            return "short"
        if blob.area <= 6:
            return "spur"
        return "spurious"
    return "mixed"


def _component_to_blob(
    component: Component,
    extra: RLEImage,
    missing: RLEImage,
) -> DefectBlob:
    top, left, bottom, right = component.bbox
    # polarity counts: clip the one-sided maps to the component's runs
    extra_px = 0
    missing_px = 0
    for y, run in component.runs:
        for other, bucket in ((extra, "e"), (missing, "m")):
            row = other[y]
            overlap = 0
            for orun in row:
                inter = orun.intersection(run)
                if inter is not None:
                    overlap += inter.length
                elif orun.start > run.end:
                    break
            if bucket == "e":
                extra_px += overlap
            else:
                missing_px += overlap
    blob = DefectBlob(
        bbox=component.bbox,
        area=component.area,
        centroid=component.centroid,
        extra_pixels=extra_px,
        missing_pixels=missing_px,
    )
    blob.kind = classify_blob(blob)
    return blob


def find_defect_blobs(
    difference: RLEImage,
    reference: RLEImage,
    scan: RLEImage,
    merge_radius: int = 1,
    min_area: int = 1,
) -> List[DefectBlob]:
    """Group a difference image into classified defect blobs.

    Parameters
    ----------
    difference:
        ``reference XOR scan`` (any engine).
    reference, scan:
        The originals, needed to resolve each blob's polarity.
    merge_radius:
        Dilation radius used to bridge nearby fragments before labeling
        (the blob geometry still comes from the undilated pixels).
    min_area:
        Discard blobs smaller than this (sensor-noise suppression).
    """
    extra = sub_images(scan, reference)
    missing = sub_images(reference, scan)

    if merge_radius > 0:
        grouped = dilate_image(difference, merge_radius, merge_radius)
    else:
        grouped = difference
    components = label_components(grouped, connectivity=8)

    blobs: List[DefectBlob] = []
    for component in components:
        # restrict the dilated component back to real difference pixels
        true_runs = []
        for y, run in component.runs:
            row = difference[y]
            for orun in row:
                inter = orun.intersection(run)
                if inter is not None:
                    true_runs.append((y, inter))
                elif orun.start > run.end:
                    break
        if not true_runs:
            continue
        true_component = Component(label=component.label, runs=true_runs)
        if true_component.area < min_area:
            continue
        blobs.append(_component_to_blob(true_component, extra, missing))
    blobs.sort(key=lambda b: (b.bbox[0], b.bbox[1]))
    return blobs
