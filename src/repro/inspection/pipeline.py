"""End-to-end inspection system with per-stage accounting.

``scan → register → systolic difference → blob extraction → classified
defect report``, timing each stage and carrying the systolic iteration
statistics through so the examples and the A4 benchmark can show where
the compressed-domain difference saves time on realistic boards.

Stage timing rides on the :mod:`repro.obs.tracing` span tracer rather
than hand-rolled ``perf_counter`` bookkeeping: each ``inspect`` call
opens an ``inspect`` span with ``align`` / ``diff`` / ``extract``
children, and the report's ``stage_seconds`` dict is derived from the
span durations.  Pass your own :class:`~repro.obs.tracing.Tracer` to
the system to collect the spans across many boards (and export them to
Chrome trace format); by default each call uses a private throwaway
tracer so the public ``stage_seconds`` contract is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracing import Tracer
from repro.rle.image import RLEImage
from repro.inspection.defects import DefectBlob, find_defect_blobs
from repro.inspection.reference import ComparisonReport, ReferenceComparator

__all__ = ["InspectionReport", "InspectionSystem"]


@dataclass
class InspectionReport:
    """Everything the system produces for one scanned board."""

    #: Pass/fail verdict (fail when any blob survives filtering).
    passed: bool
    #: Classified defect blobs, top-to-bottom.
    defects: List[DefectBlob]
    #: Registration/diff details.
    comparison: ComparisonReport
    #: Wall-clock seconds per stage: align, diff, extract.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_systolic_iterations(self) -> int:
        """Array busy-time for the whole board (sum over rows)."""
        if self.comparison.diff_result is None:
            return 0
        return self.comparison.diff_result.total_iterations

    def to_dict(self) -> Dict:
        """JSON-serializable report for line-system integration (MES /
        SPC uploaders consume this shape)."""
        return {
            "passed": self.passed,
            "alignment_offset": list(self.comparison.offset),
            "difference_pixels": self.comparison.difference_pixels,
            "systolic_iterations": self.total_systolic_iterations,
            "stage_seconds": dict(self.stage_seconds),
            "defects": [
                {
                    "kind": blob.kind,
                    "polarity": blob.polarity,
                    "bbox": list(blob.bbox),
                    "area": blob.area,
                    "centroid": [round(c, 2) for c in blob.centroid],
                }
                for blob in self.defects
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        verdict = "PASS" if self.passed else f"FAIL ({len(self.defects)} defects)"
        lines = [
            f"verdict: {verdict}",
            f"alignment offset: {self.comparison.offset}",
            f"differing pixels: {self.comparison.difference_pixels}",
            f"systolic iterations (all rows): {self.total_systolic_iterations}",
        ]
        for blob in self.defects:
            cy, cx = blob.centroid
            lines.append(
                f"  - {blob.kind:<9} at ({cy:6.1f},{cx:6.1f})  "
                f"area={blob.area:<4} polarity={blob.polarity}"
            )
        return "\n".join(lines)


class InspectionSystem:
    """A configured inspection station.

    Parameters
    ----------
    reference:
        Golden image all scans are compared against.
    max_offset:
        Registration search radius.
    min_defect_area:
        Blobs below this many differing pixels are treated as noise.
    merge_radius:
        Fragment-bridging radius for blob grouping.
    engine:
        Difference engine name (see :mod:`repro.core.api`).
    tracer:
        Optional shared :class:`repro.obs.tracing.Tracer`; every
        ``inspect`` call appends its ``inspect`` → ``align`` / ``diff``
        / ``extract`` spans to it.  ``None`` (default) gives each call
        a private tracer used only to derive ``stage_seconds``.
    """

    def __init__(
        self,
        reference: RLEImage,
        max_offset: int = 1,
        min_defect_area: int = 2,
        merge_radius: int = 1,
        engine: str = "vectorized",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.reference = reference
        self.comparator = ReferenceComparator(
            reference, max_offset=max_offset, engine=engine
        )
        self.min_defect_area = min_defect_area
        self.merge_radius = merge_radius
        self.tracer = tracer

    def inspect(self, scan: RLEImage) -> InspectionReport:
        """Inspect one scanned board."""
        tracer = self.tracer if self.tracer is not None else Tracer()
        with tracer.span("inspect", height=scan.height, width=scan.width):
            with tracer.span("align"):
                offset = self.comparator.align(scan)

            with tracer.span("diff") as diff_span:
                comparison = self.comparator.compare(scan, offset=offset)
                if comparison.diff_result is not None:
                    diff_span.set_attribute(
                        "iterations", comparison.diff_result.total_iterations
                    )

            with tracer.span("extract") as extract_span:
                aligned_scan = scan
                if comparison.offset != (0, 0):
                    from repro.rle.ops2d import translate_image

                    dy, dx = comparison.offset
                    aligned_scan = translate_image(scan, dy, dx)
                defects = find_defect_blobs(
                    comparison.difference,
                    self.reference,
                    aligned_scan,
                    merge_radius=self.merge_radius,
                    min_area=self.min_defect_area,
                )
                extract_span.set_attribute("defects", len(defects))

        # The report's stage costs come from the recorded spans; when a
        # shared tracer is in use, take the latest inspect's children
        # (the last recorded occurrence of each stage name).  A null
        # tracer records nothing, leaving the dict empty.
        stage_seconds: Dict[str, float] = {}
        for record in getattr(tracer, "spans", ()):
            if record.name in ("align", "diff", "extract"):
                stage_seconds[record.name] = record.duration

        return InspectionReport(
            passed=not defects,
            defects=defects,
            comparison=comparison,
            stage_seconds=stage_seconds,
        )
