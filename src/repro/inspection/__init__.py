"""PCB inspection application layer — the paper's motivating system.

"On-line automatic inspection of PCBs requires acquisition and
processing of gigabytes of binary image data in a matter of seconds ...
the binary image difference operation is a fundamental step in the
inspection process."

This subpackage wires the systolic difference engine into a complete
reference-comparison pipeline: registration-tolerant differencing,
clustering of difference pixels into defect blobs, geometric
classification, and an end-to-end :class:`InspectionSystem` with
per-stage accounting.
"""

from repro.inspection.reference import ReferenceComparator, ComparisonReport
from repro.inspection.defects import DefectBlob, classify_blob, find_defect_blobs
from repro.inspection.pipeline import InspectionReport, InspectionSystem

__all__ = [
    "ReferenceComparator",
    "ComparisonReport",
    "DefectBlob",
    "find_defect_blobs",
    "classify_blob",
    "InspectionSystem",
    "InspectionReport",
]
