"""Reference-based comparison with registration tolerance.

A scanned board is never pixel-aligned with the CAD reference; standard
AOI practice is to search a small window of translations and difference
against the best-aligned reference.  The comparator does exactly that in
the RLE domain — alignment scoring *is* the XOR pixel count, so the
difference engine doubles as the registration metric (one more operation
the systolic array accelerates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import GeometryError
from repro.rle.image import RLEImage
from repro.rle.ops2d import translate_image, xor_images
from repro.core.options import DiffOptions, validate_engine
from repro.core.pipeline import ImageDiffResult, diff_images

__all__ = ["ComparisonReport", "ReferenceComparator"]


@dataclass
class ComparisonReport:
    """Outcome of comparing one scan against the reference."""

    #: The difference image at the chosen alignment.
    difference: RLEImage
    #: Translation applied to the scan ``(dy, dx)``.
    offset: Tuple[int, int]
    #: Differing pixels at the chosen alignment.
    difference_pixels: int
    #: Per-row systolic measurements (``None`` when only aligning).
    diff_result: Optional[ImageDiffResult] = None


class ReferenceComparator:
    """Compare scans against a fixed reference image.

    Parameters
    ----------
    reference:
        The golden (CAD-derived) image.
    max_offset:
        Registration search radius in pixels (0 disables the search).
    engine:
        Difference engine for the *final* measured diff
        (alignment scoring always uses the fast RLE ops).
    """

    def __init__(
        self,
        reference: RLEImage,
        max_offset: int = 1,
        engine: str = "vectorized",
    ) -> None:
        if max_offset < 0:
            raise GeometryError(f"max_offset must be >= 0, got {max_offset}")
        self.reference = reference
        self.max_offset = max_offset
        self.engine = engine

    # ------------------------------------------------------------------ #
    def align(self, scan: RLEImage) -> Tuple[int, int]:
        """Best translation of ``scan`` (fewest differing pixels)."""
        if scan.shape != self.reference.shape:
            raise GeometryError(
                f"scan shape {scan.shape} != reference shape {self.reference.shape}"
            )
        best = (0, 0)
        best_score: Optional[int] = None
        for dy in range(-self.max_offset, self.max_offset + 1):
            for dx in range(-self.max_offset, self.max_offset + 1):
                candidate = translate_image(scan, dy, dx) if (dy or dx) else scan
                score = xor_images(self.reference, candidate).pixel_count
                if best_score is None or score < best_score:
                    best_score, best = score, (dy, dx)
        return best

    def compare(
        self, scan: RLEImage, offset: Optional[Tuple[int, int]] = None
    ) -> ComparisonReport:
        """Full comparison: register, then difference on the systolic engine.

        Pass a precomputed ``offset`` to skip the alignment search.
        """
        dy, dx = offset if offset is not None else self.align(scan)
        aligned = translate_image(scan, dy, dx) if (dy or dx) else scan
        diff_result = diff_images(
            self.reference, aligned, options=DiffOptions(engine=validate_engine(self.engine))
        )
        return ComparisonReport(
            difference=diff_result.image,
            offset=(dy, dx),
            difference_pixels=diff_result.difference_pixels,
            diff_result=diff_result,
        )
