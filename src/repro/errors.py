"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` package."""


class EncodingError(ReproError):
    """An RLE structure is malformed (unordered, overlapping, or negative runs)."""


class GeometryError(ReproError):
    """Two images/rows with incompatible shapes were combined."""


class SystolicError(ReproError):
    """The systolic machine was misused (e.g. stepped after halting)."""


class CapacityError(SystolicError):
    """An input does not fit in the configured number of cells."""


class UnknownEngineError(SystolicError):
    """An engine name outside :data:`repro.core.options.ENGINE_NAMES` was
    requested.

    Raised at the public API boundary (:func:`repro.core.api.row_diff`,
    :func:`repro.core.pipeline.diff_images`, ...) before any dispatch
    happens, so callers see the full list of valid names instead of a
    failure from deep inside an engine loop.  Subclasses
    :class:`SystolicError` for backward compatibility with callers that
    caught the old dispatch-time error.
    """


class OptionsError(ReproError):
    """A pre-1.1 legacy options spelling was used.

    The individual keyword arguments (``engine=``, ``tracer=``, ...)
    and the bare positional engine string were deprecated when
    :class:`repro.core.options.DiffOptions` landed and are now a hard
    error: pass ``options=DiffOptions(...)`` instead (see
    ``docs/API.md`` and CHANGELOG.md for the migration)."""


class ServiceError(ReproError):
    """The :mod:`repro.service` layer was misconfigured or misused
    (non-positive cache budget, submit after close, ...)."""


class ProtocolError(ServiceError):
    """A line-JSON wire request violated the protocol contract:
    not valid JSON, not an object, an unknown ``op``, or an
    unsupported protocol version ``v``.

    Raised (and returned typed over the socket) by
    :class:`repro.service.frontend.ShardedServer` so clients can
    distinguish "you spoke the protocol wrong" from service-side
    failures.  See the op-vocabulary table in ``docs/SERVING.md``.
    """


class UnknownSessionError(ServiceError):
    """A streaming op named a session id this tier does not hold.

    Raised by :class:`repro.service.stream.StreamingDiffService` (and
    rehydrated across the shard pipe / TCP boundary) when
    ``stream_frame`` / ``stream_close`` / ``stream_stats`` reference a
    session that was never opened, was already closed, or was lost with
    a crashed shard worker.  Clients recover by reopening the session —
    the ring walk places it on a live shard (see ``docs/SERVING.md``).
    """


class ServiceOverloadError(ServiceError):
    """The :class:`repro.service.DiffService` request queue is full.

    Backpressure signal: the batcher's bounded queue rejected a new
    request rather than growing without limit.  Callers should retry
    later or shed load.  Also raised by
    :class:`repro.service.resilience.ResilientDiffService` when the
    circuit breaker is open and the request cannot be served from the
    cache (deliberate load shedding).
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a complete result was ready.

    Raised by the :mod:`repro.service.resilience` layer.  A deadline
    expiry never returns partial runs — the caller either gets a full
    :class:`~repro.core.machine.XorRunResult` or this error.
    """


class RetryExhaustedError(ServiceError):
    """Every retry attempt permitted by the
    :class:`~repro.service.resilience.ResiliencePolicy` failed.

    The final underlying failure is chained as ``__cause__``.  Raised in
    place of non-:class:`ReproError` engine exceptions so nothing
    untyped ever escapes the service boundary.
    """


class CorruptResultError(ReproError):
    """An engine (or cache entry) produced a result that fails the
    resilience layer's structural validation — mismatched ``k1``/``k2``,
    impossible iteration counts, or an inconsistent output width.

    Treated as a *transient* failure: the resilience layer retries (and
    invalidates the offending cache entry) before surfacing it.
    """


class InjectedFaultError(ReproError):
    """A fault deliberately injected by
    :class:`repro.service.chaos.ChaosEngine`.

    Only raised by the chaos tooling; seeing it in production means a
    chaos schedule was left attached.  Transient by definition — the
    resilience layer retries it.
    """


class InvariantViolation(ReproError):
    """A runtime invariant derived from the paper's theorems failed.

    Raised by :mod:`repro.core.invariants` checkers (and by machines running
    in *paranoid* mode).  Seeing this on an unmodified machine indicates a
    simulator bug; the fault-injection tests raise it deliberately.
    """

    def __init__(self, name: str, detail: str = "") -> None:
        self.name = name
        self.detail = detail
        message = f"invariant {name!r} violated" + (f": {detail}" if detail else "")
        super().__init__(message)


class WorkloadError(ReproError):
    """A workload specification is invalid or cannot be satisfied."""


class AnalysisError(ReproError):
    """An analysis/evaluation routine was given unusable data (e.g. too
    few points to fit a model)."""


class LintError(ReproError):
    """The :mod:`repro.analysis.lint` tooling was misconfigured (bad
    path, malformed suppression directive or baseline file, unknown rule
    code)."""


class FormatError(ReproError):
    """A file being read is not in the expected format (PBM, RLE text...)."""


class ObservabilityError(ReproError):
    """The :mod:`repro.obs` layer was misused (metric re-registered with a
    different type, label mismatch, unbalanced span exit) or an emitted
    metrics/trace document failed schema validation."""
