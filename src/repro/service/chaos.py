"""Service-level fault injection: the chaos counterpart of
:mod:`repro.systolic.faults`.

The systolic fault injector corrupts *simulated hardware cells* so the
invariant checkers can prove they detect broken executions.  This module
does the same one layer up: it corrupts the *serving path*, so the
resilience layer (:mod:`repro.service.resilience`) can prove it
tolerates broken executions.  A :class:`ChaosEngine` wraps any
:data:`~repro.service.batcher.ComputeFn` and injects faults on a
deterministic, seeded :class:`ChaosSchedule` — every resilience
behaviour in the test suite is driven by a reproducible fault scenario,
never a hand-rolled mock.

Fault kinds (:data:`FAULT_KINDS`):

``error``
    Raise :class:`~repro.errors.InjectedFaultError` instead of
    computing — a typed transient engine failure.
``crash``
    Raise an *untyped* (non-:class:`~repro.errors.ReproError`)
    exception — proves the resilience boundary wraps whatever an engine
    throws into a typed error.
``latency``
    Sleep for ``latency`` seconds before computing — a slow batch, the
    raw material of deadline expirations.
``corrupt``
    Compute normally, then corrupt the first result's metadata
    (mismatched ``k1``, negative iteration count, or inconsistent
    output width, cycling deterministically) — detectable by
    :func:`repro.service.resilience.validate_result`.  Payload
    corruption that yields a *plausible but wrong* row is deliberately
    out of scope: no online validator can catch it without recomputing,
    which is what the trace verifier (:mod:`repro.core.verifier`) is
    for.

Usage::

    schedule = ChaosSchedule.bernoulli(seed=7, rate=0.1)
    chaos = ChaosEngine(schedule)
    with ResilientDiffService(options, compute=chaos) as svc:
        ...   # ~10% of engine batches now fail transiently
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import InjectedFaultError, ServiceError
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import DiffOptions
from repro.service.batcher import ComputeFn, compute_row_diffs
from repro.service.cache import DiffCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.service.store import RowStore

__all__ = [
    "FAULT_KINDS",
    "DISK_FAULT_FLAVOURS",
    "ChaosSchedule",
    "ChaosEngine",
    "corrupt_cached_result",
    "corrupt_disk_entry",
]

#: The injectable fault vocabulary, in schedule-plan order.
FAULT_KINDS: Tuple[str, ...] = ("error", "crash", "latency", "corrupt")

#: Default injected latency spike, in seconds.
DEFAULT_LATENCY_SPIKE = 0.05


class _ChaosCrash(Exception):
    """The ``crash`` fault: deliberately *not* a ReproError, so tests
    can prove the resilience boundary types whatever escapes an
    engine."""


class ChaosSchedule:
    """A deterministic per-call fault plan.

    Two shapes:

    - **Explicit**: ``ChaosSchedule(["error", None, "latency"])`` —
      call *i* gets ``plan[i]``; calls past the end are fault-free
      (or cycle with ``cycle=True``).
    - **Seeded Bernoulli**: :meth:`bernoulli` draws each call's fault
      from ``random.Random(seed)``, so the same seed always produces
      the same fault sequence — chaos runs are replayable bug reports.

    Thread-safe: the batcher worker and bulk image callers may consume
    one schedule concurrently; draws are serialized under a lock.
    """

    def __init__(
        self,
        plan: Sequence[Optional[str]] = (),
        cycle: bool = False,
    ) -> None:
        for kind in plan:
            if kind is not None and kind not in FAULT_KINDS:
                raise ServiceError(
                    f"unknown chaos fault kind {kind!r}; choose from "
                    f"{', '.join(FAULT_KINDS)} (or None)"
                )
        if cycle and not plan:
            raise ServiceError("cannot cycle an empty chaos plan")
        self._plan: Tuple[Optional[str], ...] = tuple(plan)
        self._cycle = cycle
        self._rng: Optional[random.Random] = None
        self._rate = 0.0
        self._kinds: Tuple[str, ...] = FAULT_KINDS
        self._lock = threading.Lock()
        self.calls = 0

    @classmethod
    def bernoulli(
        cls,
        seed: int,
        rate: float,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "ChaosSchedule":
        """Each call independently faults with probability ``rate``,
        the kind drawn uniformly from ``kinds`` — all from
        ``random.Random(seed)``, so the schedule is a pure function of
        the seed."""
        if not 0.0 <= rate <= 1.0:
            raise ServiceError(f"chaos rate must be in [0, 1], got {rate}")
        bad = [k for k in kinds if k not in FAULT_KINDS]
        if bad or not kinds:
            raise ServiceError(
                f"unknown chaos fault kind(s) {', '.join(bad) or '(none given)'}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        schedule = cls()
        schedule._rng = random.Random(seed)
        schedule._rate = rate
        schedule._kinds = tuple(kinds)
        return schedule

    def next_fault(self) -> Optional[str]:
        """The fault for the next call (``None`` = compute normally)."""
        with self._lock:
            index = self.calls
            self.calls += 1
            if self._rng is not None:
                if self._rng.random() >= self._rate:
                    return None
                return self._kinds[self._rng.randrange(len(self._kinds))]
            if not self._plan:
                return None
            if self._cycle:
                return self._plan[index % len(self._plan)]
            if index < len(self._plan):
                return self._plan[index]
            return None

    def call_count(self) -> int:
        """``calls`` sampled under the schedule's lock.

        The attribute stays public (tests pin it) but cross-thread
        readers — :meth:`ChaosEngine.stats` while worker threads are
        mid-:meth:`next_fault` — go through this accessor so they never
        observe the counter between the read and the ``+= 1``.
        """
        with self._lock:
            return self.calls


class ChaosEngine:
    """A :data:`~repro.service.batcher.ComputeFn` that injects faults.

    Wraps ``base`` (default
    :func:`~repro.service.batcher.compute_row_diffs`) and consults the
    schedule once per engine batch.  Injection counts land in
    :attr:`injected` and, when a registry is given, in the
    ``repro_resilience_chaos_injected_total`` counter (labelled by
    ``kind``).

    Parameters
    ----------
    schedule:
        The :class:`ChaosSchedule` deciding each call's fate.
    base:
        The wrapped compute function.
    latency:
        Seconds a ``latency`` fault sleeps before computing.
    sleep:
        Injectable sleep (tests pass a recorder instead of waiting).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        base: Optional[ComputeFn] = None,
        latency: float = DEFAULT_LATENCY_SPIKE,
        sleep: Callable[[float], None] = time.sleep,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if latency < 0:
            raise ServiceError(f"chaos latency must be >= 0, got {latency}")
        self.schedule = schedule
        self._base: ComputeFn = base if base is not None else compute_row_diffs
        self.latency = latency
        self._sleep = sleep
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {}
        self._corruptions = 0
        self._metrics = metrics
        self._m_injected = (
            metrics.counter(
                "repro_resilience_chaos_injected_total",
                "faults injected into the serving path by ChaosEngine",
                ("kind",),
            )
            if metrics is not None
            else None
        )

    def _record(self, kind: str) -> int:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1
            total = sum(self.injected.values())
        if self._m_injected is not None:
            self._m_injected.labels(kind=kind).inc()
        return total

    def __call__(
        self,
        options: DiffOptions,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
    ) -> List[XorRunResult]:
        kind = self.schedule.next_fault()
        if kind is None:
            return self._base(options, rows_a, rows_b)
        nth = self._record(kind)
        if kind == "error":
            raise InjectedFaultError(
                f"chaos: injected transient engine fault #{nth}"
            )
        if kind == "crash":
            raise _ChaosCrash(f"chaos: injected untyped engine crash #{nth}")
        if kind == "latency":
            self._sleep(self.latency)
            return self._base(options, rows_a, rows_b)
        # "corrupt": compute normally, then break the first result's
        # metadata in one of three detectable ways, cycling so a seeded
        # schedule exercises every flavour.
        results = self._base(options, rows_a, rows_b)
        if results:
            with self._lock:
                flavour = self._corruptions % 3
                self._corruptions += 1
            results[0] = _corrupt_result(results[0], flavour)
        return results

    def stats(self) -> Dict[str, int]:
        """Injection counts by kind plus the schedule's call total."""
        with self._lock:
            info = dict(self.injected)
        info["calls"] = self.schedule.call_count()
        return info


def _corrupt_result(result: XorRunResult, flavour: int) -> XorRunResult:
    """One detectably-corrupt copy of ``result``."""
    if flavour == 0:
        return replace(result, k1=result.k1 + 1)
    if flavour == 1:
        return replace(result, iterations=-1)
    wrong_width = (
        result.result.width + 1 if result.result.width is not None else 1
    )
    # same runs, inconsistent declared width (runs still fit: wider)
    return replace(
        result, result=RLERow(result.result.runs, width=wrong_width)
    )


def corrupt_cached_result(
    cache: DiffCache,
    row_a: RLERow,
    row_b: RLERow,
    options: DiffOptions,
    flavour: int = 0,
) -> bool:
    """Corrupt the cache entry for ``(row_a, row_b, options)`` in place.

    The cache-rot scenario: a stored result's metadata goes bad while
    its verbatim-input check still passes, so a plain ``DiffService``
    would happily serve it.  Returns whether an entry was found.  Test
    tooling only — reaches into the cache's internals on purpose.
    """
    key = cache.key_for(row_a, row_b, options)
    with cache._lock:
        entry = cache._entries.get(key)
        if entry is None:
            return False
        entry.result = _corrupt_result(entry.result, flavour)
        return True


#: The disk-fault vocabulary for :func:`corrupt_disk_entry`, each
#: exercising a different validation layer of the persistent store.
DISK_FAULT_FLAVOURS: Tuple[str, ...] = ("bitflip", "truncate", "unlink", "stale")


def corrupt_disk_entry(
    store: "RowStore",
    row_a: RLERow,
    row_b: RLERow,
    options: DiffOptions,
    flavour: str = "bitflip",
) -> bool:
    """Damage the persistent entry for ``(row_a, row_b, options)``.

    The disk-rot scenario: an entry file goes bad *between* processes —
    a flipped bit on a dying disk, a truncated write, an operator
    ``rm``, or a file whose payload no longer matches its address.
    Each flavour exercises a distinct validation layer of
    :meth:`~repro.service.store.RowStore.get`:

    ``bitflip``
        Flip one payload bit in place — caught by the BLAKE2b payload
        checksum (quarantined).
    ``truncate``
        Cut the file in half — caught by the header/length validation
        (quarantined).
    ``unlink``
        Remove the file — a *plain* miss (nothing to quarantine; the
        index self-corrects).
    ``stale``
        Re-encode the entry under a mutated input fingerprint and write
        it back to the original address — internally consistent
        (checksum passes!) but the stored key disagrees with the
        requested one, the stale-fingerprint case (quarantined).

    Returns whether an entry file was found.  Test tooling only —
    assumes the same default fingerprint the store's callers use and
    reaches around the store's locking on purpose (rot does not take
    locks).
    """
    from repro.service.cache import row_fingerprint
    from repro.service.store import decode_entry, encode_entry, entry_digest

    if flavour not in DISK_FAULT_FLAVOURS:
        raise ServiceError(
            f"unknown disk fault flavour {flavour!r}; choose from "
            f"{', '.join(DISK_FAULT_FLAVOURS)}"
        )
    key = (
        row_fingerprint(row_a),
        row_fingerprint(row_b),
        options.cache_key(),
    )
    digest_hex = entry_digest(key).hex()
    path = os.path.join(store.directory, "objects", digest_hex[:2], digest_hex)
    if not os.path.exists(path):
        return False
    if flavour == "unlink":
        os.unlink(path)
        return True
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    if flavour == "bitflip":
        # flip a bit safely inside the payload (past the 40-byte header)
        blob[min(len(blob) - 1, max(40, len(blob) // 2))] ^= 0x01
    elif flavour == "truncate":
        blob = blob[: len(blob) // 2]
    else:  # stale: valid checksum, wrong content for this address
        stored_key, inputs, result = decode_entry(bytes(blob))
        fp_a, fp_b, opts_key = stored_key
        mutated = (bytes([fp_a[0] ^ 0xFF]) + fp_a[1:], fp_b, opts_key)
        blob = bytearray(encode_entry(mutated, inputs, result))
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    return True
