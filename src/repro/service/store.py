"""Persistent content-addressed row store — the disk tier under
:class:`~repro.service.cache.DiffCache`.

The paper's premise is that the packed representation *is* the asset:
rows are short run lists, cheap to fingerprint, cheap to store.  The
RAM LRU exploits that within one process lifetime; this module extends
it across restarts.  A :class:`RowStore` is a directory of entry files,
each holding one cached :class:`~repro.core.machine.XorRunResult`
together with the verbatim input rows that produced it, addressed by a
digest of the same :class:`~repro.service.cache.CacheKey` the RAM tier
uses.  Rows are stored packbits-compressed (:mod:`repro.rle.packbits`)
when their run structure survives a bit-pattern round trip, and as raw
run pairs otherwise — the systolic output "is not always compressed as
much as possible" (adjacent runs are legal), and the service's
byte-identity contract means the store must reproduce even those
non-canonical runs exactly.

Correctness before speed, same creed as the RAM tier:

* every entry file carries a magic tag, its own key digest, the payload
  length and a BLAKE2b payload checksum — a flipped bit, truncated
  write or renamed file fails *closed*: the entry is moved to
  ``quarantine/``, counted (``repro_cache_disk_quarantined_total``,
  ``cache_quarantine`` log event) and reported as a miss, never served;
* the payload stores the verbatim input run pairs, and a hit is only
  served after an exact comparison — a fingerprint collision on disk
  degrades to a counted miss exactly like in RAM;
* results carrying a live trace recorder are never persisted (counted
  as ``skipped``) — a trace is a debugging artifact of one process, not
  content.

Durability is write-behind and crash-tolerant rather than transactional:
entry files are written to a temp name and atomically renamed, and the
LRU order + byte accounting live in an append-only ``index.log`` that
is replayed on open and reconciled against the actual directory
contents (files without index lines are adopted; index lines without
files are dropped).  A single-writer ``LOCK`` file (``flock``) makes
sharing safe: the first opener owns writes, later openers degrade to
read-only sharing — they serve hits but never touch the index, so N
shard workers can point at one directory (or partition it, as the
sharded front-end does with per-worker subdirectories) without
corrupting each other.
"""

from __future__ import annotations

import os
import struct
import threading
from collections import OrderedDict
from hashlib import blake2b
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

try:  # pragma: no cover - POSIX everywhere we run
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    _fcntl = None  # type: ignore[assignment]

from repro.errors import FormatError, ServiceError
from repro.core.machine import XorRunResult
from repro.rle import packbits
from repro.rle.row import RLERow
from repro.systolic.stats import ActivityStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import StructuredLog
    from repro.obs.metrics import MetricsRegistry
    from repro.service.cache import CacheKey, _Inputs

__all__ = [
    "DEFAULT_DISK_BUDGET",
    "STORE_MAGIC",
    "RowStore",
    "encode_entry",
    "decode_entry",
    "entry_digest",
]

#: Default on-disk byte budget: 256 MiB of entry files.
DEFAULT_DISK_BUDGET = 256 * 1024 * 1024

#: Entry-file magic tag ("Repro Store Entry, format 1").
STORE_MAGIC = b"RSE1"

#: Fixed header layout after the magic: key digest (16), payload length
#: (u64), payload checksum (16).
_HEADER = struct.Struct("<16sQ16s")

#: Row payload modes: packbits over the bit pattern, or raw run pairs.
_MODE_PACKBITS = 0
_MODE_PAIRS = 1

#: Compact the append-only index when it holds this many times more
#: lines than live entries (and at least ``_COMPACT_MIN`` lines).
_COMPACT_FACTOR = 8
_COMPACT_MIN = 1024

_Pairs = Tuple[Tuple[int, int], ...]


# --------------------------------------------------------------------- #
# Entry codec                                                           #
# --------------------------------------------------------------------- #
def _encode_key(key: "CacheKey") -> bytes:
    fp_a, fp_b, (engine, n_cells, paranoid, record_trace) = key
    name = engine.encode("ascii")
    return (
        fp_a
        + fp_b
        + struct.pack("<B", len(name))
        + name
        + struct.pack(
            "<qBB",
            -1 if n_cells is None else n_cells,
            int(paranoid),
            int(record_trace),
        )
    )


def _decode_key(data: bytes, off: int) -> Tuple["CacheKey", int]:
    fp_a = data[off : off + 16]
    fp_b = data[off + 16 : off + 32]
    if len(fp_b) != 16:
        raise FormatError("store entry truncated inside the cache key")
    off += 32
    (name_len,) = struct.unpack_from("<B", data, off)
    off += 1
    engine = data[off : off + name_len].decode("ascii")
    off += name_len
    n_cells, paranoid, record_trace = struct.unpack_from("<qBB", data, off)
    off += struct.calcsize("<qBB")
    key: "CacheKey" = (
        fp_a,
        fp_b,
        (engine, None if n_cells < 0 else n_cells, bool(paranoid), bool(record_trace)),
    )
    return key, off


def _pairs_reconstructible_from_bits(pairs: _Pairs, width: Optional[int]) -> bool:
    """Whether packbits (a bit-pattern codec) can round-trip ``pairs``
    exactly.  Adjacent or unsorted runs collapse under a bit round trip
    — those rows must travel as raw pairs to keep byte identity."""
    if width is None:
        return False
    next_free = 0  # earliest start the next run may use, keeping a gap
    for start, length in pairs:
        if length < 1 or start < next_free or start + length > width:
            return False
        # from_bits merges touching runs, so demand a 1-column gap
        next_free = start + length + 1
    return True


def _encode_rle(pairs: _Pairs, width: Optional[int]) -> bytes:
    out = bytearray(struct.pack("<q", -1 if width is None else width))
    if _pairs_reconstructible_from_bits(pairs, width):
        packed = packbits.encode_row(RLERow.from_pairs(pairs, width=width))
        out += struct.pack("<BI", _MODE_PACKBITS, len(packed))
        out += packed
        return bytes(out)
    out += struct.pack("<BI", _MODE_PAIRS, len(pairs))
    for start, length in pairs:
        out += struct.pack("<qq", start, length)
    return bytes(out)


def _decode_rle(data: bytes, off: int) -> Tuple[_Pairs, Optional[int], int]:
    (raw_width,) = struct.unpack_from("<q", data, off)
    off += 8
    width: Optional[int] = None if raw_width < 0 else raw_width
    mode, count = struct.unpack_from("<BI", data, off)
    off += struct.calcsize("<BI")
    if mode == _MODE_PACKBITS:
        if width is None:
            raise FormatError("packbits-mode row without a width")
        packed = data[off : off + count]
        if len(packed) != count:
            raise FormatError("store entry truncated inside a packbits row")
        off += count
        row = packbits.decode_row(bytes(packed), width)
        return tuple(row.to_pairs()), width, off
    if mode != _MODE_PAIRS:
        raise FormatError(f"unknown row mode {mode} in store entry")
    need = 16 * count
    if len(data) - off < need:
        raise FormatError("store entry truncated inside a run-pair row")
    pairs: List[Tuple[int, int]] = []
    for _ in range(count):
        start, length = struct.unpack_from("<qq", data, off)
        off += 16
        pairs.append((start, length))
    return tuple(pairs), width, off


def encode_entry(key: "CacheKey", inputs: "_Inputs", result: XorRunResult) -> bytes:
    """One cache entry as a self-validating byte blob.

    Layout: ``RSE1`` magic, then a fixed header (key digest, payload
    length, BLAKE2b-128 payload checksum), then the payload — the full
    cache key, the two verbatim input rows, the result row (packbits
    when bit-reconstructible, raw pairs otherwise) and the run metadata
    (iterations, k1, k2, n_cells, activity counters).
    """
    pairs_a, width_a, pairs_b, width_b = inputs
    payload = bytearray(_encode_key(key))
    payload += _encode_rle(pairs_a, width_a)
    payload += _encode_rle(pairs_b, width_b)
    payload += _encode_rle(tuple(result.result.to_pairs()), result.result.width)
    payload += struct.pack(
        "<qqqq", result.iterations, result.k1, result.k2, result.n_cells
    )
    items = result.stats.items()
    payload += struct.pack("<I", len(items))
    for name, value in items:
        encoded = name.encode("utf-8")
        payload += struct.pack("<H", len(encoded)) + encoded + struct.pack("<q", value)
    blob = bytes(payload)
    checksum = blake2b(blob, digest_size=16).digest()
    return STORE_MAGIC + _HEADER.pack(entry_digest(key), len(blob), checksum) + blob


def decode_entry(blob: bytes) -> Tuple["CacheKey", "_Inputs", XorRunResult]:
    """Validate and decode :func:`encode_entry` output.

    Raises :class:`~repro.errors.FormatError` on any structural damage:
    bad magic, short header, length mismatch, checksum mismatch, or a
    payload that does not parse.  Callers quarantine on that signal.
    """
    if blob[:4] != STORE_MAGIC:
        raise FormatError("store entry has a bad magic tag")
    if len(blob) < 4 + _HEADER.size:
        raise FormatError("store entry shorter than its header")
    digest, length, checksum = _HEADER.unpack_from(blob, 4)
    payload = blob[4 + _HEADER.size :]
    if len(payload) != length:
        raise FormatError(
            f"store entry payload is {len(payload)} bytes, header says {length}"
        )
    if blake2b(payload, digest_size=16).digest() != checksum:
        raise FormatError("store entry payload checksum mismatch")
    try:
        key, off = _decode_key(payload, 0)
        pairs_a, width_a, off = _decode_rle(payload, off)
        pairs_b, width_b, off = _decode_rle(payload, off)
        pairs_r, width_r, off = _decode_rle(payload, off)
        iterations, k1, k2, n_cells = struct.unpack_from("<qqqq", payload, off)
        off += 32
        (n_items,) = struct.unpack_from("<I", payload, off)
        off += 4
        items: List[Tuple[str, int]] = []
        for _ in range(n_items):
            (name_len,) = struct.unpack_from("<H", payload, off)
            off += 2
            name = payload[off : off + name_len].decode("utf-8")
            off += name_len
            (value,) = struct.unpack_from("<q", payload, off)
            off += 8
            items.append((name, value))
    except (struct.error, UnicodeDecodeError) as exc:
        raise FormatError(f"store entry payload does not parse: {exc}") from exc
    if entry_digest(key) != digest:
        raise FormatError("store entry key does not match its header digest")
    inputs: "_Inputs" = (pairs_a, width_a, pairs_b, width_b)
    result = XorRunResult(
        result=RLERow.from_pairs(pairs_r, width=width_r),
        iterations=iterations,
        k1=k1,
        k2=k2,
        n_cells=n_cells,
        stats=ActivityStats.from_items(items),
    )
    return key, inputs, result


def entry_digest(key: "CacheKey") -> bytes:
    """The 128-bit address of one cache key — the entry's file name."""
    return blake2b(_encode_key(key), digest_size=16).digest()


# --------------------------------------------------------------------- #
# The store                                                             #
# --------------------------------------------------------------------- #
class RowStore:
    """A byte-budgeted, content-addressed directory of row-diff results.

    Parameters
    ----------
    directory:
        The store root (created if missing).  Layout: ``objects/<xx>/``
        fanout of entry files, ``index.log`` (append-only LRU journal),
        ``LOCK`` (single-writer flock), ``quarantine/`` (corrupt files,
        kept for inspection, never re-served).
    max_bytes:
        On-disk budget over the summed entry-file sizes.  Inserting
        past it evicts least-recently-used entries (files unlinked,
        ``evict`` journaled).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; counters
        and gauges mirror under the ``repro_cache_disk_*`` families,
        labelled with ``name``.
    name:
        The ``store`` label value used in the metric families.
    log:
        Optional :class:`~repro.obs.log.StructuredLog` for the
        ``cache_warm`` (entries adopted at open) and
        ``cache_quarantine`` (corrupt entry sidelined) events.

    A store that failed to take the writer lock still *reads* (it can
    probe and serve entries, adopting files it discovers) but silently
    refuses writes, eviction and quarantine moves — check
    :attr:`writable`.  All public methods are thread-safe.
    """

    def __init__(
        self,
        directory: str,
        max_bytes: int = DEFAULT_DISK_BUDGET,
        metrics: "Optional[MetricsRegistry]" = None,
        name: str = "row-diff",
        log: "Optional[StructuredLog]" = None,
    ) -> None:
        if max_bytes < 1:
            raise ServiceError(f"store max_bytes must be >= 1, got {max_bytes}")
        self.directory = os.path.abspath(directory)
        self.max_bytes = max_bytes
        self.name = name
        self._log = log
        self._lock = threading.Lock()
        self._objects = os.path.join(self.directory, "objects")
        self._quarantine_dir = os.path.join(self.directory, "quarantine")
        self._index_path = os.path.join(self.directory, "index.log")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._quarantine_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.quarantined = 0
        self.collisions = 0
        self.skipped = 0
        self.errors = 0
        self._closed = False
        self._bytes = 0
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._tombstones: Set[str] = set()
        self._index_lines = 0
        self._lock_fd = self._acquire_writer_lock()
        self._init_metrics(metrics)
        with self._lock:
            self._replay_index()
            self.warm_entries = len(self._index)
            self._sync_gauges()
        if self._log is not None:
            self._log.log(
                "cache_warm",
                level="info",
                store=self.name,
                entries=self.warm_entries,
                bytes=self.total_bytes,
                writable=self.writable,
            )

    # -- open/close ---------------------------------------------------- #
    def _acquire_writer_lock(self) -> Optional[int]:
        path = os.path.join(self.directory, "LOCK")
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if _fcntl is None:  # pragma: no cover - non-POSIX
            return fd
        try:
            _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return None
        return fd

    @property
    def writable(self) -> bool:
        """Whether this process holds the single-writer lock."""
        with self._lock:
            return self._writable_locked()

    def _writable_locked(self) -> bool:
        return self._lock_fd is not None and not self._closed

    def close(self) -> None:
        """Release the writer lock (idempotent).  Reads and writes after
        close are refused (writes silently, reads as misses)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._lock_fd is not None:
                if _fcntl is not None:
                    _fcntl.flock(self._lock_fd, _fcntl.LOCK_UN)
                os.close(self._lock_fd)
                self._lock_fd = None

    def __enter__(self) -> "RowStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- index --------------------------------------------------------- #
    def _replay_index(self) -> None:
        """Rebuild LRU order and byte accounting from the journal, then
        reconcile against what is actually on disk."""
        try:
            with open(self._index_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    parts = line.strip().split()
                    if len(parts) < 2:
                        continue  # torn tail from a crash — ignore
                    op, digest = parts[0], parts[1]
                    if op == "put" and len(parts) == 3 and parts[2].isdigit():
                        old = self._index.pop(digest, None)
                        if old is not None:
                            self._bytes -= old
                        self._index[digest] = int(parts[2])
                        self._bytes += int(parts[2])
                    elif op == "touch":
                        if digest in self._index:
                            self._index.move_to_end(digest)
                    elif op in ("evict", "quarantine"):
                        old = self._index.pop(digest, None)
                        if old is not None:
                            self._bytes -= old
                    self._index_lines += 1
        except OSError:
            pass
        # drop index entries whose files vanished; adopt orphan files
        on_disk: Dict[str, int] = {}
        try:
            for fan in os.scandir(self._objects):
                if not fan.is_dir():
                    continue
                for entry in os.scandir(fan.path):
                    if entry.is_file():
                        on_disk[entry.name] = entry.stat().st_size
        except OSError:
            pass
        for digest in [d for d in self._index if d not in on_disk]:
            self._bytes -= self._index.pop(digest)
        for digest, size in sorted(on_disk.items()):
            if digest not in self._index:
                self._index[digest] = size
                self._bytes += size
            elif self._index[digest] != size:
                self._bytes += size - self._index[digest]
                self._index[digest] = size
        if self._writable_locked():
            self._maybe_compact_locked(force=self._index_lines > len(self._index))

    def _append_index(self, op: str, digest: str, nbytes: Optional[int] = None) -> None:
        # caller holds self._lock and has checked writable
        line = f"{op} {digest} {nbytes}\n" if nbytes is not None else f"{op} {digest}\n"
        try:
            with open(self._index_path, "a", encoding="utf-8") as fh:
                fh.write(line)
        except OSError:
            self.errors += 1
        self._index_lines += 1
        self._maybe_compact_locked()

    def _maybe_compact_locked(self, force: bool = False) -> None:
        if not self._writable_locked():
            return
        threshold = max(_COMPACT_MIN, _COMPACT_FACTOR * max(1, len(self._index)))
        if not force and self._index_lines < threshold:
            return
        tmp = self._index_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for digest, nbytes in self._index.items():
                    fh.write(f"put {digest} {nbytes}\n")
            os.replace(tmp, self._index_path)
            self._index_lines = len(self._index)
        except OSError:
            self.errors += 1

    # -- paths --------------------------------------------------------- #
    def _path_for(self, digest_hex: str) -> str:
        return os.path.join(self._objects, digest_hex[:2], digest_hex)

    # -- read path ----------------------------------------------------- #
    def get(self, key: "CacheKey", inputs: "_Inputs") -> Optional[XorRunResult]:
        """The stored result for ``key``, or ``None``.

        ``inputs`` are the requesting rows' verbatim run pairs — a hit
        is only served after they compare equal to the stored ones.
        Any structural damage (bad magic/length/checksum, unparseable
        payload, or a payload whose key disagrees with the file's
        address — the stale-fingerprint case) quarantines the file and
        reports a miss: a corrupt disk can cost hit rate, never bytes.
        """
        digest_hex = entry_digest(key).hex()
        with self._lock:
            if self._closed or digest_hex in self._tombstones:
                self._count_miss()
                return None
            path = self._path_for(digest_hex)
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                # unknown to the filesystem: a plain miss (drop any
                # stale index line so accounting follows reality)
                old = self._index.pop(digest_hex, None)
                if old is not None:
                    self._bytes -= old
                    if self._writable_locked():
                        self._append_index("evict", digest_hex)
                self._count_miss()
                self._sync_gauges()
                return None
            try:
                stored_key, stored_inputs, result = decode_entry(blob)
            except FormatError as exc:
                self._quarantine_locked(digest_hex, path, str(exc))
                self._count_miss()
                self._sync_gauges()
                return None
            if stored_key != key:
                self._quarantine_locked(
                    digest_hex, path, "stale entry: stored key differs from address"
                )
                self._count_miss()
                self._sync_gauges()
                return None
            if stored_inputs != inputs:
                self.collisions += 1
                if self._m_collisions is not None:
                    self._m_collisions.inc()
                self._count_miss()
                return None
            # adopt files another writer produced after our replay
            if digest_hex not in self._index:
                self._index[digest_hex] = len(blob)
                self._bytes += len(blob)
                if self._writable_locked():
                    self._append_index("put", digest_hex, len(blob))
            else:
                self._index.move_to_end(digest_hex)
                if self._writable_locked():
                    self._append_index("touch", digest_hex)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            self._sync_gauges()
            return result

    def contains(self, key: "CacheKey") -> bool:
        """Whether an entry file exists for ``key`` (no validation)."""
        digest_hex = entry_digest(key).hex()
        with self._lock:
            if self._closed or digest_hex in self._tombstones:
                return False
            return digest_hex in self._index or os.path.exists(
                self._path_for(digest_hex)
            )

    # -- write path ---------------------------------------------------- #
    def put(self, key: "CacheKey", inputs: "_Inputs", result: XorRunResult) -> bool:
        """Persist one entry; returns whether it landed on disk.

        Refused (``False``, counted) when the store is read-only or
        closed, when the result carries a live trace recorder, or when
        the encoded entry alone exceeds the whole byte budget.  LRU
        entries are evicted (files unlinked) until the budget holds.
        """
        if result.trace is not None:
            with self._lock:
                self.skipped += 1
            return False
        digest_hex = entry_digest(key).hex()
        blob = encode_entry(key, inputs, result)
        with self._lock:
            if not self._writable_locked():
                self.skipped += 1
                return False
            if len(blob) > self.max_bytes:
                self.skipped += 1
                return False
            self._tombstones.discard(digest_hex)
            path = self._path_for(digest_hex)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            try:
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except OSError:
                self.errors += 1
                return False
            old = self._index.pop(digest_hex, None)
            if old is not None:
                self._bytes -= old
            self._index[digest_hex] = len(blob)
            self._bytes += len(blob)
            self.writes += 1
            if self._m_writes is not None:
                self._m_writes.inc()
            self._append_index("put", digest_hex, len(blob))
            while self._bytes > self.max_bytes and len(self._index) > 1:
                victim, nbytes = self._index.popitem(last=False)
                self._bytes -= nbytes
                try:
                    os.unlink(self._path_for(victim))
                except OSError:
                    pass
                self.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
                self._append_index("evict", victim)
            self._sync_gauges()
            return True

    def invalidate(self, key: "CacheKey") -> bool:
        """Drop the entry stored under ``key``, if any.

        The resilience layer's self-heal calls this through
        :meth:`DiffCache.invalidate <repro.service.cache.DiffCache.invalidate>`
        so a structurally-rotten result cannot be re-promoted from disk
        on the next miss.  Read-only stores cannot unlink another
        writer's files; they tombstone the key locally instead, which
        protects this process just the same.
        """
        digest_hex = entry_digest(key).hex()
        with self._lock:
            if self._closed:
                return False
            old = self._index.pop(digest_hex, None)
            if old is not None:
                self._bytes -= old
            existed = old is not None
            if self._writable_locked():
                try:
                    os.unlink(self._path_for(digest_hex))
                    existed = True
                except OSError:
                    pass
                if existed:
                    self._append_index("evict", digest_hex)
            else:
                self._tombstones.add(digest_hex)
            if existed:
                self.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
            self._sync_gauges()
            return existed

    # -- quarantine ---------------------------------------------------- #
    def _quarantine_locked(self, digest_hex: str, path: str, reason: str) -> None:
        old = self._index.pop(digest_hex, None)
        if old is not None:
            self._bytes -= old
        self._tombstones.add(digest_hex)
        if self._writable_locked():
            try:
                os.replace(
                    path, os.path.join(self._quarantine_dir, digest_hex)
                )
            except OSError:
                self.errors += 1
            self._append_index("quarantine", digest_hex)
        self.quarantined += 1
        if self._m_quarantined is not None:
            self._m_quarantined.inc()
        if self._log is not None:
            self._log.log(
                "cache_quarantine",
                level="warning",
                store=self.name,
                digest=digest_hex,
                reason=reason,
            )

    # -- metrics ------------------------------------------------------- #
    def _init_metrics(self, metrics: "Optional[MetricsRegistry]") -> None:
        self._m_hits: Any = None
        self._m_misses: Any = None
        self._m_writes: Any = None
        self._m_evictions: Any = None
        self._m_quarantined: Any = None
        self._m_collisions: Any = None
        self._m_bytes: Any = None
        self._m_entries: Any = None
        self._metrics = metrics
        if metrics is None:
            return
        labels = ("store",)
        self._m_hits = metrics.counter(
            "repro_cache_disk_hits_total", "disk-tier cache hits", labels
        ).labels(store=self.name)
        self._m_misses = metrics.counter(
            "repro_cache_disk_misses_total", "disk-tier cache misses", labels
        ).labels(store=self.name)
        self._m_writes = metrics.counter(
            "repro_cache_disk_writes_total", "entries persisted to disk", labels
        ).labels(store=self.name)
        self._m_evictions = metrics.counter(
            "repro_cache_disk_evictions_total",
            "disk entries evicted under the byte budget or invalidated",
            labels,
        ).labels(store=self.name)
        self._m_quarantined = metrics.counter(
            "repro_cache_disk_quarantined_total",
            "corrupt disk entries sidelined to quarantine/",
            labels,
        ).labels(store=self.name)
        self._m_collisions = metrics.counter(
            "repro_cache_disk_collisions_total",
            "fingerprint collisions detected by verbatim-input verification",
            labels,
        ).labels(store=self.name)
        self._m_bytes = metrics.gauge(
            "repro_cache_disk_bytes", "bytes of live entry files", labels
        ).labels(store=self.name)
        self._m_entries = metrics.gauge(
            "repro_cache_disk_entries", "live disk entries", labels
        ).labels(store=self.name)

    def _count_miss(self) -> None:
        # caller holds the lock
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()

    def _sync_gauges(self) -> None:
        # caller holds the lock (or is the constructor)
        if self._m_bytes is not None:
            self._m_bytes.set(float(self._bytes))
        if self._m_entries is not None:
            self._m_entries.set(float(len(self._index)))

    # -- introspection ------------------------------------------------- #
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def total_bytes(self) -> int:
        """Summed size of all live entry files."""
        with self._lock:
            return self._bytes

    def info(self) -> Dict[str, float]:
        """Counters and budget as one plain dict (for logs and the CLI)."""
        with self._lock:
            return {
                "disk_entries": float(len(self._index)),
                "disk_bytes": float(self._bytes),
                "disk_max_bytes": float(self.max_bytes),
                "disk_hits": float(self.hits),
                "disk_misses": float(self.misses),
                "disk_writes": float(self.writes),
                "disk_evictions": float(self.evictions),
                "disk_quarantined": float(self.quarantined),
                "disk_collisions": float(self.collisions),
                "disk_skipped": float(self.skipped),
                "disk_errors": float(self.errors),
                "disk_warm_entries": float(self.warm_entries),
                "disk_writable": float(self._writable_locked()),
            }
