"""The sharded serving front-end: worker pool, router, and TCP server.

Three layers, each usable on its own:

:class:`ShardedDiffService`
    N worker processes, each running a private
    :class:`~repro.service.resilience.ResilientDiffService`, behind the
    :class:`~repro.service.shard.ShardRing`.  ``diff_rows`` routes every
    pair by ``row_fingerprint(row_a)``, scatters one bulk request per
    shard, and reassembles results in input order — byte-identical to a
    single-process :class:`~repro.service.DiffService` (asserted by the
    integration tests and the sharded benchmark).  Worker errors come
    back as the same typed :mod:`repro.errors` classes the in-process
    services raise, and per-worker
    :class:`~repro.obs.metrics.MetricsSnapshot`\\ s merge into one
    registry for the existing JSON/Prometheus exporters.

:class:`ShardedServer` / :class:`ServerThread`
    An asyncio TCP front-end speaking newline-delimited JSON (one
    request object per line, one response per line), dispatching into a
    :class:`ShardedDiffService` via the event loop's executor so the
    loop never blocks on a compute.  ``ServerThread`` hosts the loop in
    a daemon thread for the CLI and the tests.

:class:`ShardClient`
    A small blocking client for the same protocol (the CLI selftest and
    the integration tests drive the server with it).

Failure semantics across the boundary (see ``docs/SERVING.md``):
a worker's backpressure (``ServiceOverloadError``), breaker trips,
deadline expiries and validation failures all arrive typed; a worker
process dying mid-request fails that request's future with
:class:`~repro.errors.ServiceError` rather than hanging the caller.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from hashlib import blake2b

from repro.errors import (
    GeometryError,
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    UnknownSessionError,
)
from repro.rle.image import RLEImage
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import IMAGE_DEFAULTS, DiffOptions, resolve_options
from repro.core.pipeline import ImageDiffResult
from repro.obs.context import RequestContext, encode_context, new_request_id
from repro.obs.log import StructuredLog, decode_event
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import Tracer, TraceStore
from repro.service.cache import DEFAULT_CACHE_BYTES
from repro.service.resilience import ResiliencePolicy
from repro.service.shard import (
    DEFAULT_REPLICAS,
    OptionsWire,
    ShardRing,
    decode_error,
    decode_result,
    decode_span,
    encode_options,
    encode_result,
    worker_main,
)
from repro.service.stream import (
    FrameDelta,
    StreamPolicy,
    decode_frame_delta,
    encode_frame_delta,
    encode_image,
    encode_stream_policy,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ShardedDiffService",
    "ShardedServer",
    "ServerThread",
    "ShardClient",
]

#: The line-JSON wire protocol version.  Every response carries
#: ``"v": PROTOCOL_VERSION``; requests may carry ``"v"`` and a value
#: other than this one is rejected with a typed
#: :class:`~repro.errors.ProtocolError` (a missing ``"v"`` is accepted
#: as the current version, so pre-versioning clients keep working).
#: See the op-vocabulary table in ``docs/SERVING.md``.
PROTOCOL_VERSION = 1


# --------------------------------------------------------------------- #
# One worker process, seen from the front-end                           #
# --------------------------------------------------------------------- #
class _WorkerHandle:
    """A shard worker: the child process, its pipe, and the receiver
    thread that resolves request futures by sequence number.

    ``request`` may be called from any thread (sends are serialized
    under a lock); replies are read by the single receiver thread, so
    the pipe never sees concurrent reads.  If the worker process dies,
    every pending future fails with a typed
    :class:`~repro.errors.ServiceError` — no caller is left hanging.
    """

    def __init__(
        self,
        worker_id: int,
        options_wire: OptionsWire,
        policy: Optional[ResiliencePolicy],
        cache_bytes: int,
        ctx: Any,
    ) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, options_wire, policy, cache_bytes),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()  # the child owns its end now
        self._lock = threading.Lock()
        self._pending: Dict[int, "Future[Any]"] = {}
        self._next_seq = 0
        self._closed = False
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-shard-recv-{worker_id}",
            daemon=True,
        )
        self._receiver.start()

    # -- request/reply -------------------------------------------------- #
    def request(self, kind: str, payload: Any = None) -> "Future[Any]":
        future: "Future[Any]" = Future()
        with self._lock:
            if self._closed:
                raise ServiceError(
                    f"shard worker {self.worker_id} is closed; no further "
                    f"requests accepted"
                )
            seq = self._next_seq
            self._next_seq += 1
            self._pending[seq] = future
            try:
                self._conn.send((kind, seq, payload))
            except (OSError, BrokenPipeError) as exc:
                self._pending.pop(seq, None)
                raise ServiceError(
                    f"shard worker {self.worker_id} pipe is broken "
                    f"({type(exc).__name__}) — worker presumed dead"
                ) from exc
        return future

    def call(self, kind: str, payload: Any = None, timeout: Optional[float] = None) -> Any:
        """Synchronous request (submit + wait)."""
        return self.request(kind, payload).result(timeout=timeout)

    def _receive_loop(self) -> None:
        while True:
            try:
                status, seq, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                future = self._pending.pop(seq, None)
            if future is None:  # cancelled/duplicate — nothing to resolve
                continue
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(decode_error(payload))
        # the pipe is gone: fail everything still in flight
        with self._lock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    ServiceError(
                        f"shard worker {self.worker_id} exited with the "
                        f"request still pending"
                    )
                )

    # -- lifecycle ------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return bool(self._process.is_alive())

    def close(self, timeout: float = 5.0) -> None:
        """Ask the worker to drain and exit; escalate to terminate if it
        does not comply within ``timeout`` seconds.  Idempotent."""
        future: "Optional[Future[Any]]" = None
        with self._lock:
            already_closed = self._closed
        if not already_closed:
            try:
                future = self.request("close")
            except ServiceError:
                future = None
        if future is not None:
            try:
                future.result(timeout=timeout)
            except (ReproError, Exception):  # worker died mid-close: fine
                pass
        with self._lock:
            self._closed = True
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=timeout)
        try:
            self._conn.close()
        except OSError:  # already closed by the receiver's EOF
            pass


# --------------------------------------------------------------------- #
# The sharded service                                                   #
# --------------------------------------------------------------------- #
class ShardedDiffService:
    """N shard workers behind a consistent-hash router.

    Parameters
    ----------
    options:
        The :class:`~repro.core.options.DiffOptions` every worker serves
        under.  Observability handles are stripped before crossing the
        process boundary — each worker records into a private registry;
        use :meth:`merged_registry` / :meth:`merged_snapshot` for the
        fleet-wide view.
    workers:
        Shard count (one process per shard).
    policy:
        :class:`~repro.service.resilience.ResiliencePolicy` for every
        worker's resilient service; falls back to ``options.resilience``
        then to the defaults.
    cache_bytes:
        Per-worker cache budget.  Shards cache disjoint content slices,
        so the effective fleet budget is ``workers * cache_bytes``.
    replicas:
        Virtual nodes per shard on the ring.
    trace_sample_rate:
        Fraction of requests whose spans are recorded and shipped back
        from the workers (decided deterministically per request id by
        :meth:`~repro.obs.context.RequestContext.sample`, so every
        process agrees).  1.0 traces everything; 0.0 disables span
        shipping without touching logs or metrics.

    Distributed observability: every request carries a
    :class:`~repro.obs.context.RequestContext`; the front-end records
    its own span (lane 0), re-records worker spans on lanes ``k+1``,
    stores the stitched set in :attr:`trace_store`, ingests
    worker-shipped log events into :attr:`log`, and measures end-to-end
    latency into the ``repro_request_latency_seconds`` family of
    :attr:`registry` (tier ``frontend``) with SLO-breach accounting
    against ``policy.slo_seconds``.
    """

    def __init__(
        self,
        options: Union[DiffOptions, str, None] = None,
        workers: int = 2,
        policy: Optional[ResiliencePolicy] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        replicas: int = DEFAULT_REPLICAS,
        trace_sample_rate: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        opts = resolve_options(options, {}, IMAGE_DEFAULTS, "ShardedDiffService")
        self.options = opts.without_observability()
        if policy is None:
            policy = opts.resilience
        self.policy = policy
        self.trace_sample_rate = trace_sample_rate
        self.ring = ShardRing(workers, replicas)
        # Front-end observability: its own registry (the workers' merge
        # separately — see merged_registry), the fleet log, and the
        # stitched per-request trace store behind {"op": "trace"}.
        self.registry = MetricsRegistry()
        self.log = StructuredLog()
        self.trace_store = TraceStore()
        self._m_latency = self.registry.histogram(
            "repro_request_latency_seconds",
            "request latency by operation and tier",
            ("op", "tier"),
            buckets=LATENCY_BUCKETS_S,
        )
        self._m_slo = self.registry.counter(
            "repro_slo_breaches_total",
            "requests slower than the policy's slo_seconds budget",
            ("op",),
        )
        self._slo_seconds = (
            policy.slo_seconds
            if policy is not None
            else ResiliencePolicy().slo_seconds
        )
        ctx = multiprocessing.get_context()
        # Partition the persistent tier per worker: the ring already
        # gives each shard a disjoint content slice, so sharing one
        # store directory would only serialize the workers on its
        # single-writer lock.  `<cache_dir>/worker-<i>` keeps every
        # worker a writer of its own slice, and a restarted fleet with
        # the same worker count re-opens the same partitions warm.
        self._workers = []
        for i in range(workers):
            worker_opts = self.options
            if worker_opts.cache_dir is not None:
                worker_opts = worker_opts.replace(
                    cache_dir=os.path.join(
                        worker_opts.cache_dir, f"worker-{i}"
                    )
                )
            self._workers.append(
                _WorkerHandle(
                    i, encode_options(worker_opts), policy, cache_bytes, ctx
                )
            )
        self._close_lock = threading.Lock()
        self._closed = False
        # Streaming session placement: session id -> shard index.  A
        # session sticks to one shard (its key frame stays hot in that
        # worker's cache); placement walks the ring's preference order
        # and skips dead workers, so a session lost with its shard
        # deterministically reopens on the next shard around the ring.
        self._stream_lock = threading.Lock()
        self._stream_shards: Dict[str, int] = {}

    # -- introspection -------------------------------------------------- #
    @property
    def workers(self) -> int:
        return len(self._workers)

    def ping(self, timeout: Optional[float] = 10.0) -> List[int]:
        """Round-trip every worker; returns their ids (readiness probe)."""
        futures = [handle.request("ping") for handle in self._workers]
        return [future.result(timeout=timeout) for future in futures]

    def worker_stats(self, timeout: Optional[float] = 10.0) -> List[Dict[str, float]]:
        """Each worker's ``stats()`` dict, in shard order."""
        futures = [handle.request("stats") for handle in self._workers]
        return [future.result(timeout=timeout) for future in futures]

    def stats(self, timeout: Optional[float] = 10.0) -> Dict[str, float]:
        """Fleet-wide stats: worker counters summed, ``hit_rate``
        recomputed from the summed hit/miss totals (a mean of per-shard
        rates would weight idle shards equally with hot ones).

        ``latency_*`` keys are quantiles, not counters — the per-worker
        values are dropped rather than summed, and the reported
        ``latency_p50``/``latency_p99`` are the *front-end's* end-to-end
        view (:meth:`~repro.obs.metrics.Histogram.quantile` over the
        ``repro_request_latency_seconds`` frontend series).
        ``slo_breaches`` sums the workers' service-side breaches with
        the front-end's end-to-end ones.
        """
        per_worker = self.worker_stats(timeout=timeout)
        totals: Dict[str, float] = {"workers": float(len(per_worker))}
        for stats in per_worker:
            for key, value in stats.items():
                if key == "hit_rate" or key.startswith("latency_"):
                    continue
                totals[key] = totals.get(key, 0.0) + value
        seen = totals.get("hits", 0.0) + totals.get("misses", 0.0)
        totals["hit_rate"] = totals.get("hits", 0.0) / seen if seen else 0.0
        snap = self.registry.snapshot()
        totals["latency_p50"] = snap.histogram_quantile(
            "repro_request_latency_seconds", 0.5, tier="frontend"
        )
        totals["latency_p99"] = snap.histogram_quantile(
            "repro_request_latency_seconds", 0.99, tier="frontend"
        )
        totals["slo_breaches"] = totals.get("slo_breaches", 0.0) + (
            snap.counter_total("repro_slo_breaches_total")
        )
        return totals

    def health(self) -> Dict[str, Any]:
        """A cheap liveness/latency probe (the ``{"op": "health"}``
        server op): worker process liveness plus the front-end's p99
        and SLO burn.  Does not round-trip the workers — a hung worker
        shows up as ``alive`` until its process dies; use :meth:`ping`
        for a synchronous readiness check."""
        with self._close_lock:
            closed = self._closed
        alive = sum(1 for handle in self._workers if handle.alive)
        snap = self.registry.snapshot()
        if closed:
            status = "closed"
        elif alive == len(self._workers):
            status = "healthy"
        else:
            status = "degraded"
        return {
            "status": status,
            "workers": len(self._workers),
            "workers_alive": alive,
            "latency_p99": snap.histogram_quantile(
                "repro_request_latency_seconds", 0.99, tier="frontend"
            ),
            "slo_breaches": snap.counter_total("repro_slo_breaches_total"),
            "log_records": float(len(self.log)),
            "traces_stored": float(len(self.trace_store)),
        }

    def worker_snapshots(
        self, timeout: Optional[float] = 10.0
    ) -> List[MetricsSnapshot]:
        """Each worker's cumulative metrics snapshot, in shard order."""
        futures = [handle.request("snapshot") for handle in self._workers]
        return [future.result(timeout=timeout) for future in futures]

    def merged_registry(
        self, timeout: Optional[float] = 10.0
    ) -> MetricsRegistry:
        """A *fresh* registry holding every worker's snapshot merged.

        Fresh on every call because worker snapshots are cumulative —
        merging them into a long-lived registry twice would double every
        counter.  Export with the registry's existing ``to_json()`` /
        ``to_prometheus_text()``.
        """
        registry = MetricsRegistry()
        for snapshot in self.worker_snapshots(timeout=timeout):
            registry.merge_snapshot(snapshot)
        return registry

    def merged_snapshot(
        self, timeout: Optional[float] = 10.0
    ) -> MetricsSnapshot:
        """The fleet-wide :class:`~repro.obs.metrics.MetricsSnapshot`
        (equals the fold of the per-worker snapshots under
        :meth:`MetricsSnapshot.merge` — asserted by the benchmark)."""
        return self.merged_registry(timeout=timeout).snapshot()

    # -- requests ------------------------------------------------------- #
    def diff_rows(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        ctx: Optional[RequestContext] = None,
    ) -> List[XorRunResult]:
        """Scatter the pairs over the shards by content, gather, and
        reassemble in input order.

        All scattered slices are drained even when one fails, so no
        worker is left computing into an abandoned pipe; the first
        failure (in shard order) is then re-raised, typed.

        Every call runs under a :class:`~repro.obs.context.RequestContext`
        (a fresh one is generated when ``ctx`` is ``None``): the request
        id rides the pipe to every touched worker, worker spans and log
        events come back with the replies, and the stitched trace lands
        in :attr:`trace_store` under that id.
        """
        rows_a, rows_b = list(rows_a), list(rows_b)
        if len(rows_a) != len(rows_b):
            raise GeometryError(
                f"row sequences differ in length: {len(rows_a)} vs {len(rows_b)}"
            )
        with self._close_lock:
            if self._closed:
                raise ServiceError("ShardedDiffService is closed")
        if not rows_a:
            return []
        if ctx is None:
            ctx = RequestContext.new(sample_rate=self.trace_sample_rate)
        # A per-request tracer (concurrent requests from the TCP
        # executor threads must not share one span stack); its spans are
        # stitched into the store when the request finishes.
        tracer = Tracer()
        started = time.perf_counter()
        self.log.log(
            "request_admitted",
            request_id=ctx.request_id,
            level="debug",
            op="diff_rows",
            tier="frontend",
            rows=len(rows_a),
        )
        try:
            with tracer.span(
                "sharded_diff_rows", request_id=ctx.request_id, rows=len(rows_a)
            ):
                results = self._scatter_gather(rows_a, rows_b, ctx, tracer)
        except BaseException as exc:
            self._finish_request(ctx, tracer, started, exc)
            raise
        self._finish_request(ctx, tracer, started, None)
        return results

    def _finish_request(
        self,
        ctx: RequestContext,
        tracer: Tracer,
        started: float,
        exc: Optional[BaseException],
        op: str = "diff_rows",
    ) -> None:
        """Terminal accounting for one front-end request: end-to-end
        latency, SLO burn, the completion/shed log event, and the
        stitched trace (sampled requests only)."""
        elapsed = max(0.0, time.perf_counter() - started)
        self._m_latency.labels(op=op, tier="frontend").observe(elapsed)
        breached = self._slo_seconds is not None and elapsed > self._slo_seconds
        if breached:
            self._m_slo.labels(op=op).inc()
        if exc is None:
            self.log.log(
                "request_completed",
                request_id=ctx.request_id,
                level="debug",
                op=op,
                tier="frontend",
                ok=True,
                seconds=elapsed,
                slo_breach=breached,
            )
        elif isinstance(exc, ServiceOverloadError):
            self.log.log(
                "request_shed",
                request_id=ctx.request_id,
                level="warning",
                op=op,
                tier="frontend",
                seconds=elapsed,
            )
        else:
            self.log.log(
                "request_completed",
                request_id=ctx.request_id,
                level="warning",
                op=op,
                tier="frontend",
                ok=False,
                error=type(exc).__name__,
                seconds=elapsed,
                slo_breach=breached,
            )
        if ctx.sampled and tracer.spans:
            self.trace_store.add(ctx.request_id, tracer.spans)

    def _scatter_gather(
        self,
        rows_a: List[RLERow],
        rows_b: List[RLERow],
        ctx: RequestContext,
        tracer: Tracer,
    ) -> List[XorRunResult]:
        by_shard: Dict[int, List[int]] = {}
        for index, row_a in enumerate(rows_a):
            by_shard.setdefault(self.ring.shard_for_row(row_a), []).append(index)
        ctx_wire = encode_context(ctx)
        scattered: List[Tuple[int, List[int], "Future[Any]"]] = []
        first_error: Optional[BaseException] = None
        for shard, indices in sorted(by_shard.items()):
            payload = (
                tuple(_encode_row(rows_a[i]) for i in indices),
                tuple(_encode_row(rows_b[i]) for i in indices),
                ctx_wire,
            )
            try:
                future = self._workers[shard].request("diff_rows", payload)
            except ServiceError as exc:
                # the worker was already gone at send time (broken pipe
                # or receiver-marked closed) — same observability as a
                # death mid-flight; keep scattering so the surviving
                # shards are still driven and drained
                if not self._workers[shard].alive:
                    self.log.log(
                        "worker_death",
                        request_id=ctx.request_id,
                        level="error",
                        worker=shard,
                        error=type(exc).__name__,
                    )
                if first_error is None:
                    first_error = exc
                continue
            scattered.append((shard, indices, future))
        served: List[Optional[XorRunResult]] = [None] * len(rows_a)
        for shard, indices, future in scattered:
            try:
                wires, spans_wire, events_wire = future.result()
            except BaseException as exc:
                if not self._workers[shard].alive:
                    self.log.log(
                        "worker_death",
                        request_id=ctx.request_id,
                        level="error",
                        worker=shard,
                        error=type(exc).__name__,
                    )
                if first_error is None:
                    first_error = exc
                continue
            # Stitch: worker log events into the fleet log, worker spans
            # onto lane shard+1 of this request's timeline (re-recorded
            # from their durations, so clock skew cannot distort it).
            for event_wire in events_wire:
                self.log.ingest(decode_event(event_wire))
            for span_wire in spans_wire:
                name, duration_s, attributes = decode_span(span_wire)
                tracer.record_span(
                    name, duration_s, lane=shard + 1, **attributes
                )
            if len(wires) != len(indices):
                if first_error is None:
                    first_error = ServiceError(
                        f"shard {shard} returned {len(wires)} result(s) for "
                        f"{len(indices)} routed pair(s)"
                    )
                continue
            for index, wire in zip(indices, wires):
                served[index] = decode_result(wire)
        if first_error is not None:
            raise first_error
        # every index was routed exactly once and every shard returned a
        # full slice, so nothing can be unserved here — but the bulk
        # path's contract is checked, not assumed
        unfilled = [i for i, r in enumerate(served) if r is None]
        if unfilled:
            raise ServiceError(
                f"sharded serve left {len(unfilled)} of {len(served)} rows "
                f"unserved (first unfilled index {unfilled[0]})"
            )
        return [r for r in served if r is not None]

    # -- streaming sessions --------------------------------------------- #
    @staticmethod
    def _session_digest(session_id: str) -> bytes:
        return blake2b(session_id.encode("utf-8"), digest_size=8).digest()

    def _place_session(self, session_id: str) -> int:
        """The first *alive* shard in the session's ring-walk preference
        order — the consistent-hash placement with dead-worker failover."""
        for shard in self.ring.preference(self._session_digest(session_id)):
            if self._workers[shard].alive:
                return shard
        raise ServiceError("no shard worker is alive to host the session")

    def _session_shard(self, session_id: str) -> int:
        with self._stream_lock:
            shard = self._stream_shards.get(session_id)
        if shard is None:
            raise UnknownSessionError(
                f"unknown stream session {session_id!r} — it was never "
                f"opened on this front-end or was already closed; open a "
                f"session first"
            )
        return shard

    def _session_lost(
        self, session_id: str, shard: int, exc: BaseException
    ) -> UnknownSessionError:
        """Account for a session's shard dying under it: drop the
        placement, log the death, and build the typed error the caller
        re-raises.  The client recovers by reopening — placement then
        walks past the dead shard."""
        with self._stream_lock:
            if self._stream_shards.get(session_id) == shard:
                del self._stream_shards[session_id]
        self.log.log(
            "worker_death",
            request_id=session_id,
            level="error",
            worker=shard,
            error=type(exc).__name__,
        )
        return UnknownSessionError(
            f"stream session {session_id!r} was lost with shard worker "
            f"{shard} ({type(exc).__name__}); reopen the session — it "
            f"will remap to a live shard"
        )

    def stream_open(
        self,
        session_id: Optional[str] = None,
        policy: Optional[StreamPolicy] = None,
    ) -> str:
        """Open a streaming session on the shard its id hashes to.

        Routing is by session id on the same consistent-hash ring that
        routes ``diff_rows`` content, so every frame of the session
        lands on one worker and its key frame rows stay hot in that
        worker's cache.  Returns the session id (generated when
        ``None``); reuse it as the ``request_id`` parent when stitching
        stream traffic into a wider trace.
        """
        with self._close_lock:
            if self._closed:
                raise ServiceError("ShardedDiffService is closed")
        if session_id is None:
            session_id = new_request_id()
        shard = self._place_session(session_id)
        policy_wire = (
            encode_stream_policy(policy) if policy is not None else None
        )
        try:
            self._workers[shard].call("stream_open", (session_id, policy_wire))
        except ServiceError as exc:
            if not self._workers[shard].alive:
                raise self._session_lost(session_id, shard, exc) from exc
            raise
        with self._stream_lock:
            self._stream_shards[session_id] = shard
        self.log.log(
            "stream_opened",
            request_id=session_id,
            level="info",
            tier="frontend",
            worker=shard,
        )
        return session_id

    def stream_frame(
        self,
        session_id: str,
        frame: RLEImage,
        ctx: Optional[RequestContext] = None,
    ) -> FrameDelta:
        """Append one frame to a session; returns its
        :class:`~repro.service.stream.FrameDelta`.

        Runs under a :class:`~repro.obs.context.RequestContext` whose
        ``parent_id`` is the session id (generated when ``ctx`` is
        ``None``), with the same end-to-end latency/SLO accounting,
        span stitching and log ingestion as :meth:`diff_rows`.  A shard
        dying mid-session surfaces as a typed
        :class:`~repro.errors.UnknownSessionError` telling the caller
        to reopen; breaker sheds arrive as
        :class:`~repro.errors.ServiceOverloadError`.
        """
        with self._close_lock:
            if self._closed:
                raise ServiceError("ShardedDiffService is closed")
        shard = self._session_shard(session_id)
        if ctx is None:
            ctx = RequestContext.new(
                parent_id=session_id, sample_rate=self.trace_sample_rate
            )
        tracer = Tracer()
        started = time.perf_counter()
        self.log.log(
            "request_admitted",
            request_id=ctx.request_id,
            level="debug",
            op="stream_frame",
            tier="frontend",
            session_id=session_id,
        )
        try:
            with tracer.span(
                "sharded_stream_frame",
                request_id=ctx.request_id,
                session_id=session_id,
                worker=shard,
            ):
                payload = (session_id, encode_image(frame), encode_context(ctx))
                try:
                    wire, spans_wire, events_wire = self._workers[shard].call(
                        "stream_frame", payload
                    )
                except ReproError as exc:
                    if not self._workers[shard].alive:
                        raise self._session_lost(
                            session_id, shard, exc
                        ) from exc
                    raise
                for event_wire in events_wire:
                    self.log.ingest(decode_event(event_wire))
                for span_wire in spans_wire:
                    name, duration_s, attributes = decode_span(span_wire)
                    tracer.record_span(
                        name, duration_s, lane=shard + 1, **attributes
                    )
                delta = decode_frame_delta(wire)
        except BaseException as exc:
            self._finish_request(ctx, tracer, started, exc, op="stream_frame")
            raise
        self._finish_request(ctx, tracer, started, None, op="stream_frame")
        return delta

    def stream_close(self, session_id: str) -> Dict[str, float]:
        """End a session; returns its final stats dict."""
        shard = self._session_shard(session_id)
        with self._stream_lock:
            self._stream_shards.pop(session_id, None)
        try:
            stats = self._workers[shard].call("stream_close", session_id)
        except ReproError as exc:
            if not self._workers[shard].alive:
                raise self._session_lost(session_id, shard, exc) from exc
            raise
        self.log.log(
            "stream_closed",
            request_id=session_id,
            level="info",
            tier="frontend",
            worker=shard,
            frames=int(stats.get("frames", 0.0)),
            rekeys=int(stats.get("rekeys", 0.0)),
        )
        return dict(stats)

    def stream_stats(
        self, session_id: Optional[str] = None
    ) -> Dict[str, float]:
        """One session's stats, or (with ``None``) the fleet-wide
        aggregate over every worker's open sessions."""
        if session_id is not None:
            shard = self._session_shard(session_id)
            try:
                return dict(
                    self._workers[shard].call("stream_stats", session_id)
                )
            except ReproError as exc:
                if not self._workers[shard].alive:
                    raise self._session_lost(session_id, shard, exc) from exc
                raise
        futures = []
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                futures.append(handle.request("stream_stats", None))
            except ServiceError:
                continue
        totals: Dict[str, float] = {}
        for future in futures:
            try:
                stats = future.result()
            except ReproError:
                continue
            for key, value in stats.items():
                if key == "compression_ratio":
                    continue
                totals[key] = totals.get(key, 0.0) + value
        shipped = totals.get("shipped_runs", 0.0)
        totals["compression_ratio"] = (
            totals.get("raw_runs", 0.0) / shipped if shipped else 1.0
        )
        return totals

    def stream_sessions(self) -> List[str]:
        """The ids of every session this front-end currently routes."""
        with self._stream_lock:
            return sorted(self._stream_shards)

    def diff_images(self, image_a: RLEImage, image_b: RLEImage) -> ImageDiffResult:
        """Whole-image diff through the shards; same assembly contract
        as :meth:`DiffService.diff_images` (honours ``canonical``)."""
        if image_a.shape != image_b.shape:
            raise GeometryError(
                f"image shapes differ: {image_a.shape} vs {image_b.shape}"
            )
        row_results = self.diff_rows(list(image_a), list(image_b))
        return ImageDiffResult(
            image=RLEImage(
                (
                    r.canonical_result if self.options.canonical else r.result
                    for r in row_results
                ),
                width=image_a.width,
            ),
            row_results=row_results,
        )

    # -- lifecycle ------------------------------------------------------ #
    def close(self, timeout: float = 5.0) -> None:
        """Drain and stop every worker.  Idempotent."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._workers:
            handle.close(timeout=timeout)

    def __enter__(self) -> "ShardedDiffService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _encode_row(row: RLERow) -> Tuple[Tuple[Tuple[int, int], ...], Optional[int]]:
    return (tuple((r.start, r.length) for r in row.runs), row.width)


# --------------------------------------------------------------------- #
# The TCP front-end (newline-delimited JSON)                            #
# --------------------------------------------------------------------- #
class ShardedServer:
    """An asyncio TCP server over a :class:`ShardedDiffService`.

    Protocol: one JSON object per line in, one per line out.  Requests
    carry an ``op``; responses carry ``ok`` plus either the result
    fields or ``error``/``message`` (the error name matching the typed
    :mod:`repro.errors` class a local caller would have caught).  A
    client-supplied ``id`` field is echoed verbatim on *every* response
    to that request — success or error — so pipelined clients can match
    replies without counting lines:

    ``{"op": "ping"}``
        ``{"ok": true, "workers": N}``
    ``{"op": "diff_rows", "rows_a": [[pairs, width], ...], "rows_b": ...,
    "request_id": "<optional parent trace id>"}``
        ``{"ok": true, "request_id": "<server-assigned id>",
        "results": [[pairs, width, iterations, k1, k2, n_cells,
        stats_items], ...]}`` — the returned ``request_id`` keys the
        stitched trace behind ``{"op": "trace"}``; a client-supplied
        ``request_id`` becomes the context's ``parent_id``
    ``{"op": "stats"}``
        ``{"ok": true, "stats": {...}}`` (fleet-wide, counters summed)
    ``{"op": "health"}``
        ``{"ok": true, "health": {...}}`` (liveness + p99 + SLO burn)
    ``{"op": "trace", "request_id": "<id>"}``
        ``{"ok": true, "trace": {...}}`` — the stitched
        ``repro.trace/v1`` Chrome document for that request; without
        ``request_id``, ``{"ok": true, "request_ids": [...]}``
    ``{"op": "logs"}``
        ``{"ok": true, "logs": [...]}`` — the front-end's structured
        log records (``repro.log/v1``), worker events included
    ``{"op": "metrics", "format": "json" | "prometheus"}``
        the merged cross-worker registry through the existing exporters
    ``{"op": "stream_open"}`` / ``{"op": "stream_frame"}`` /
    ``{"op": "stream_close"}`` / ``{"op": "stream_stats"}``
        the streaming session vocabulary (see
        :mod:`repro.service.stream` and the table in ``docs/SERVING.md``)

    The protocol is versioned: every response carries
    ``"v": PROTOCOL_VERSION``; a request may declare its version the
    same way, and an unsupported one — like an unknown ``op`` or a
    non-JSON line — is rejected with a typed
    :class:`~repro.errors.ProtocolError` rather than a generic failure.

    Dispatch runs in the loop's default executor so a long engine batch
    never blocks other connections' reads.
    """

    def __init__(
        self,
        service: ShardedDiffService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # server shutdown cancels handlers parked on a read or a
            # close; ending the task normally (instead of cancelled)
            # keeps asyncio's stream callback from logging a traceback
            pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    # unparseable lines never reach _dispatch, so the
                    # version stamp has to happen here too
                    response = _error_response(
                        ProtocolError(f"request is not valid JSON: {exc}")
                    )
                    response["v"] = PROTOCOL_VERSION
                else:
                    response = await loop.run_in_executor(
                        None, self._dispatch, request
                    )
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # peer already gone
                pass

    def _dispatch(self, request: Any) -> Dict[str, Any]:
        response = self._dispatch_inner(request)
        # every response — errors included — declares the protocol
        # version it speaks, and echoes a client-supplied id so
        # pipelined clients can match replies
        response["v"] = PROTOCOL_VERSION
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        return response

    def _dispatch_inner(self, request: Any) -> Dict[str, Any]:
        try:
            if not isinstance(request, dict):
                raise ProtocolError(
                    f"request must be a JSON object, got {type(request).__name__}"
                )
            version = request.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}; this server "
                    f"speaks v{PROTOCOL_VERSION} (see docs/SERVING.md)"
                )
            op = request.get("op")
            if op == "ping":
                self.service.ping()
                return {"ok": True, "workers": self.service.workers}
            if op == "diff_rows":
                rows_a = [_row_from_json(w) for w in request.get("rows_a", ())]
                rows_b = [_row_from_json(w) for w in request.get("rows_b", ())]
                parent = request.get("request_id")
                ctx = RequestContext.new(
                    parent_id=str(parent) if parent is not None else None,
                    sample_rate=self.service.trace_sample_rate,
                )
                results = self.service.diff_rows(rows_a, rows_b, ctx=ctx)
                return {
                    "ok": True,
                    "request_id": ctx.request_id,
                    "results": [encode_result(r) for r in results],
                }
            if op == "stats":
                return {"ok": True, "stats": self.service.stats()}
            if op == "health":
                return {"ok": True, "health": self.service.health()}
            if op == "trace":
                request_id = request.get("request_id")
                if request_id is None:
                    return {
                        "ok": True,
                        "request_ids": self.service.trace_store.request_ids(),
                    }
                return {
                    "ok": True,
                    "trace": self.service.trace_store.to_chrome_trace(
                        str(request_id)
                    ),
                }
            if op == "logs":
                return {"ok": True, "logs": self.service.log.records()}
            if op == "metrics":
                registry = self.service.merged_registry()
                if request.get("format") == "prometheus":
                    return {"ok": True, "prometheus": registry.to_prometheus_text()}
                return {"ok": True, "metrics": registry.to_json()}
            if op == "stream_open":
                session_id = request.get("session_id")
                policy = None
                if "rekey_ratio" in request or "max_chain" in request:
                    defaults = StreamPolicy()
                    policy = StreamPolicy(
                        rekey_ratio=float(
                            request.get("rekey_ratio", defaults.rekey_ratio)
                        ),
                        max_chain=int(
                            request.get("max_chain", defaults.max_chain)
                        ),
                    )
                opened = self.service.stream_open(
                    session_id=(
                        str(session_id) if session_id is not None else None
                    ),
                    policy=policy,
                )
                return {"ok": True, "session_id": opened}
            if op == "stream_frame":
                session_id = _required_session_id(request)
                frame_wire = request.get("frame")
                if frame_wire is None:
                    raise ProtocolError('stream_frame requires a "frame" field')
                ctx = RequestContext.new(
                    parent_id=session_id,
                    sample_rate=self.service.trace_sample_rate,
                )
                delta = self.service.stream_frame(
                    session_id, _image_from_json(frame_wire), ctx=ctx
                )
                return {
                    "ok": True,
                    "session_id": session_id,
                    "request_id": ctx.request_id,
                    "delta": encode_frame_delta(delta),
                }
            if op == "stream_close":
                session_id = _required_session_id(request)
                return {
                    "ok": True,
                    "session_id": session_id,
                    "stats": self.service.stream_close(session_id),
                }
            if op == "stream_stats":
                session_id = request.get("session_id")
                return {
                    "ok": True,
                    "stats": self.service.stream_stats(
                        str(session_id) if session_id is not None else None
                    ),
                }
            raise ProtocolError(
                f"unknown op {op!r}; see the op-vocabulary table in "
                f"docs/SERVING.md"
            )
        except ReproError as exc:
            return _error_response(exc)
        except Exception as exc:  # nothing untyped crosses the socket
            return _error_response(
                ServiceError(f"untyped {type(exc).__name__}: {exc}")
            )


def _error_response(exc: ReproError) -> Dict[str, Any]:
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}


def _required_session_id(request: Dict[str, Any]) -> str:
    session_id = request.get("session_id")
    if session_id is None:
        raise ProtocolError(
            f'op {request.get("op")!r} requires a "session_id" field'
        )
    return str(session_id)


def _row_from_json(wire: Any) -> RLERow:
    pairs, width = wire
    return RLERow.from_pairs(
        [(int(start), int(length)) for start, length in pairs], width=width
    )


def _image_from_json(wire: Any) -> RLEImage:
    rows_wire, width = wire
    return RLEImage.from_row_pairs(
        [
            [(int(start), int(length)) for start, length in pairs]
            for pairs in rows_wire
        ],
        width=int(width),
    )


class ServerThread:
    """A :class:`ShardedServer` hosted on a background event loop.

    ``start()`` blocks until the listening socket is bound (so the
    caller can read ``port`` immediately); ``stop()`` shuts down the
    server, the loop and the thread.  The service itself is *not*
    closed — the owner constructed it, the owner closes it.
    """

    def __init__(
        self,
        service: ShardedDiffService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = ShardedServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=timeout):
            raise ServiceError(
                f"server did not start listening within {timeout:g}s"
            )
        if self._startup_error is not None:
            raise ServiceError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            # connection handlers may still be parked on a readline();
            # cancel them so the loop closes clean
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# A blocking client for the line-JSON protocol                          #
# --------------------------------------------------------------------- #
class ShardClient:
    """A minimal synchronous client for :class:`ShardedServer`.

    One persistent connection, requests answered in order.  Worker-side
    typed errors are re-raised locally via
    :func:`~repro.service.shard.decode_error`, so remote and in-process
    callers handle the same exception classes.

    After a :meth:`diff_rows` (or :meth:`diff_images`) round-trip,
    :attr:`last_request_id` holds the server-assigned request id — feed
    it to :meth:`trace` to fetch that request's stitched distributed
    trace.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        #: the server-assigned request id of the most recent diff call
        self.last_request_id: Optional[str] = None

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request.setdefault("v", PROTOCOL_VERSION)
        self._sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        line = self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        response = json.loads(line)
        if not response.get("ok"):
            raise decode_error(
                (response.get("error", "ServiceError"), response.get("message", ""))
            )
        return response

    def ping(self) -> int:
        """Round-trip the server and every worker; returns worker count."""
        return int(self._roundtrip({"op": "ping"})["workers"])

    def diff_rows(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        request_id: Optional[str] = None,
    ) -> List[XorRunResult]:
        """Diff row pairs; an optional ``request_id`` becomes the
        server-side context's ``parent_id`` (for callers stitching this
        call into their own trace)."""
        request: Dict[str, Any] = {
            "op": "diff_rows",
            "rows_a": [_encode_row(r) for r in rows_a],
            "rows_b": [_encode_row(r) for r in rows_b],
        }
        if request_id is not None:
            request["request_id"] = request_id
        response = self._roundtrip(request)
        self.last_request_id = response.get("request_id")
        return [_result_from_json(wire) for wire in response["results"]]

    def diff_images(self, image_a: RLEImage, image_b: RLEImage) -> List[XorRunResult]:
        """Row results for two equal-shape images (the caller assembles
        an image if it wants one — the wire carries row results)."""
        if image_a.shape != image_b.shape:
            raise GeometryError(
                f"image shapes differ: {image_a.shape} vs {image_b.shape}"
            )
        return self.diff_rows(list(image_a), list(image_b))

    # -- streaming sessions --------------------------------------------- #
    def stream_open(
        self,
        session_id: Optional[str] = None,
        rekey_ratio: Optional[float] = None,
        max_chain: Optional[int] = None,
    ) -> str:
        """Open a streaming session; returns its id (server-generated
        when ``session_id`` is ``None``).  ``rekey_ratio``/``max_chain``
        override the server's default
        :class:`~repro.service.stream.StreamPolicy`."""
        request: Dict[str, Any] = {"op": "stream_open"}
        if session_id is not None:
            request["session_id"] = session_id
        if rekey_ratio is not None:
            request["rekey_ratio"] = rekey_ratio
        if max_chain is not None:
            request["max_chain"] = max_chain
        return str(self._roundtrip(request)["session_id"])

    def stream_frame(self, session_id: str, frame: RLEImage) -> FrameDelta:
        """Append one frame; returns the
        :class:`~repro.service.stream.FrameDelta` to apply client-side
        (XOR the delta onto the previous decoded frame; frame 0's delta
        *is* the key frame)."""
        response = self._roundtrip(
            {
                "op": "stream_frame",
                "session_id": session_id,
                "frame": encode_image(frame),
            }
        )
        self.last_request_id = response.get("request_id")
        return decode_frame_delta(response["delta"])

    def stream_close(self, session_id: str) -> Dict[str, float]:
        """End a session; returns its final stats dict."""
        return dict(
            self._roundtrip({"op": "stream_close", "session_id": session_id})[
                "stats"
            ]
        )

    def stream_stats(self, session_id: Optional[str] = None) -> Dict[str, float]:
        """One session's stats, or the fleet aggregate with ``None``."""
        request: Dict[str, Any] = {"op": "stream_stats"}
        if session_id is not None:
            request["session_id"] = session_id
        return dict(self._roundtrip(request)["stats"])

    def stats(self) -> Dict[str, float]:
        return dict(self._roundtrip({"op": "stats"})["stats"])

    def health(self) -> Dict[str, Any]:
        """The server's health probe (status, liveness, p99, SLO burn)."""
        return dict(self._roundtrip({"op": "health"})["health"])

    def trace(self, request_id: Optional[str] = None) -> Any:
        """One request's stitched ``repro.trace/v1`` Chrome document, or
        the list of stored request ids when ``request_id`` is ``None``."""
        if request_id is None:
            return list(self._roundtrip({"op": "trace"})["request_ids"])
        return self._roundtrip({"op": "trace", "request_id": request_id})["trace"]

    def logs(self) -> List[Dict[str, Any]]:
        """The front-end's structured ``repro.log/v1`` records (worker
        events already stitched in)."""
        return list(self._roundtrip({"op": "logs"})["logs"])

    def metrics_json(self) -> Dict[str, Any]:
        return dict(self._roundtrip({"op": "metrics", "format": "json"})["metrics"])

    def metrics_prometheus(self) -> str:
        return str(
            self._roundtrip({"op": "metrics", "format": "prometheus"})["prometheus"]
        )

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _result_from_json(wire: Any) -> XorRunResult:
    pairs, width, iterations, k1, k2, n_cells, stat_items = wire
    return decode_result(
        (
            tuple((int(s), int(l)) for s, l in pairs),
            width,
            int(iterations),
            int(k1),
            int(k2),
            int(n_cells),
            tuple((str(name), int(count)) for name, count in stat_items),
        )
    )
