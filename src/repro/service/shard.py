"""Sharding primitives: the consistent-hash ring, the wire codecs, and
the worker process loop.

The paper's premise — compressed rows are cheap to fingerprint — is
what makes scale-out routing nearly free: the front-end already pays
O(k) to key a row for the cache, and the same 128-bit
:func:`~repro.service.cache.row_fingerprint` digest doubles as the
routing key.  Requests are placed on a consistent-hash ring keyed by
``row_fingerprint(row_a)``, so

* identical content always lands on the same worker — each shard's
  :class:`~repro.service.cache.DiffCache` stays hot on *its slice* of
  the content space instead of every worker caching everything;
* adding or removing a worker remaps only ``~1/N`` of the key space
  (the classic consistent-hashing property), preserved here by the
  virtual-node ring.

Everything that crosses the process boundary is builtin-typed wire
tuples, mirroring :mod:`repro.core.parallel`: rows travel as
``(pairs, width)``, results as ``(pairs, width, iterations, k1, k2,
n_cells, stats_items)``, and errors as ``(class_name, message)`` pairs
rehydrated into the same typed :mod:`repro.errors` hierarchy on the
other side — a worker's ``ServiceOverloadError`` (queue full, breaker
open) is a ``ServiceOverloadError`` to the front-end's caller too.
Metrics cross the boundary the same way they do in the process pool: a
worker snapshots its private registry into a picklable
:class:`~repro.obs.metrics.MetricsSnapshot` on demand and the front-end
merges them (see :class:`repro.service.frontend.ShardedDiffService`).

The protocol itself is deliberately tiny: length-ordered request/reply
over a :func:`multiprocessing.Pipe`, messages are ``(kind, seq,
payload)`` tuples, and every request gets exactly one reply tagged with
its ``seq`` (``"ok"`` or ``"err"``).  See ``docs/SERVING.md`` for the
message table.
"""

from __future__ import annotations

from bisect import bisect_left
from hashlib import blake2b
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ServiceError
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import DiffOptions, validate_engine
from repro.service.cache import row_fingerprint
from repro.systolic.stats import ActivityStats

__all__ = [
    "DEFAULT_REPLICAS",
    "MAX_SPANS_PER_REPLY",
    "MAX_EVENTS_PER_REPLY",
    "ShardRing",
    "OptionsWire",
    "RowWire",
    "ResultWire",
    "ErrorWire",
    "SpanWire",
    "encode_options",
    "decode_options",
    "encode_row",
    "decode_row",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "encode_span",
    "decode_span",
    "worker_main",
]

#: Virtual nodes per shard on the ring.  More replicas smooth the key
#: distribution (stddev ~ 1/sqrt(replicas)); 64 keeps the imbalance a
#: few percent while the ring stays tiny (N*64 points).
DEFAULT_REPLICAS = 64

#: Semantic options plus cache-placement plumbing in wire form:
#: ``(engine, n_cells, canonical, paranoid, record_trace, cache_dir,
#: disk_budget)``.  Observability handles never cross the boundary —
#: each worker owns a private registry.  ``cache_dir``/``disk_budget``
#: ride along so each worker can open its own persistent tier (the
#: front-end partitions the directory per worker — see
#: :class:`repro.service.frontend.ShardedDiffService`); a 5-tuple from
#: a pre-1.2 peer decodes with both unset.
OptionsWire = Tuple[
    str, Optional[int], bool, bool, bool, Optional[str], Optional[int]
]

#: One row on the wire: its run pairs and declared width.
RowWire = Tuple[Tuple[Tuple[int, int], ...], Optional[int]]

#: One result on the wire: output run pairs, width, iterations, k1, k2,
#: n_cells, and the activity counters as sorted (name, count) tuples.
ResultWire = Tuple[
    Tuple[Tuple[int, int], ...],
    Optional[int],
    int,
    int,
    int,
    int,
    Tuple[Tuple[str, int], ...],
]

#: One error on the wire: the :mod:`repro.errors` class name and the
#: message.  :func:`decode_error` rehydrates it.
ErrorWire = Tuple[str, str]

#: One measured span on the wire: ``(name, duration_s, sorted
#: (key, value) attribute pairs)``.  Only the duration crosses — the
#: front-end re-records it on its own clock
#: (:meth:`repro.obs.tracing.Tracer.record_span`), so clock skew
#: between processes never distorts the stitched timeline.
SpanWire = Tuple[str, float, Tuple[Tuple[str, object], ...]]

#: Per-reply shipping bounds: a pathological request cannot flood the
#: pipe with observability payload — excess spans/events stay behind
#: (events ride out with later replies; spans past the cap are dropped).
MAX_SPANS_PER_REPLY = 32
MAX_EVENTS_PER_REPLY = 64


# --------------------------------------------------------------------- #
# The consistent-hash ring                                              #
# --------------------------------------------------------------------- #
class ShardRing:
    """A consistent-hash ring mapping content digests to shard indices.

    Each of the ``n_shards`` shards owns ``replicas`` virtual points,
    placed by hashing ``shard:<index>:<replica>``; a key is routed to
    the first point clockwise from its own position (wrapping).  The
    placement is deterministic — every front-end computes the same
    ring, and the routing tests pin the distribution.

    Parameters
    ----------
    n_shards:
        Number of shards (worker processes) on the ring.
    replicas:
        Virtual nodes per shard.
    """

    def __init__(self, n_shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if n_shards < 1:
            raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                digest = blake2b(
                    f"shard:{shard}:{replica}".encode("ascii"), digest_size=8
                ).digest()
                points.append((int.from_bytes(digest, "big"), shard))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def shard_for_digest(self, digest: bytes) -> int:
        """The shard owning ``digest`` (any byte string; the first 8
        bytes place it on the ring)."""
        position = int.from_bytes(digest[:8], "big")
        index = bisect_left(self._keys, position)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._points[index][1]

    def preference(self, digest: bytes) -> List[int]:
        """Every shard, in ring-walk order from ``digest``'s position.

        The first element is :meth:`shard_for_digest`; the rest are the
        fallbacks a key remaps to if earlier choices are gone — the
        front-end uses this to place a streaming session on the first
        *alive* shard, so a session lost with its worker deterministically
        reopens on the next shard around the ring.
        """
        position = int.from_bytes(digest[:8], "big")
        start = bisect_left(self._keys, position)
        order: List[int] = []
        seen = set()
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == self.n_shards:
                    break
        return order

    def shard_for_row(self, row: RLERow) -> int:
        """The shard owning ``row``'s content — the routing key is
        :func:`~repro.service.cache.row_fingerprint`, the same digest
        the shard's cache will key the result under."""
        return self.shard_for_digest(row_fingerprint(row))


# --------------------------------------------------------------------- #
# Wire codecs (builtin types only, mirroring repro.core.parallel)       #
# --------------------------------------------------------------------- #
def encode_options(options: DiffOptions) -> OptionsWire:
    """The semantic fields of ``options`` as a wire tuple (the
    observability handles stay on their side of the boundary)."""
    return (
        options.engine,
        options.n_cells,
        options.canonical,
        options.paranoid,
        options.record_trace,
        options.cache_dir,
        options.disk_budget,
    )


def decode_options(wire: OptionsWire) -> DiffOptions:
    if len(wire) == 5:  # pre-1.2 peer: no persistent-cache fields
        engine, n_cells, canonical, paranoid, record_trace = wire  # type: ignore[misc]
        cache_dir: Optional[str] = None
        disk_budget: Optional[int] = None
    else:
        (
            engine,
            n_cells,
            canonical,
            paranoid,
            record_trace,
            cache_dir,
            disk_budget,
        ) = wire
    return DiffOptions(
        # The wire carries the engine as a plain string; re-validate it
        # into the EngineName literal on the way back in (a skewed or
        # corrupted peer fails typed here rather than deep in dispatch).
        engine=validate_engine(engine),
        n_cells=n_cells,
        canonical=canonical,
        paranoid=paranoid,
        record_trace=record_trace,
        cache_dir=cache_dir,
        disk_budget=disk_budget,
    )


def encode_row(row: RLERow) -> RowWire:
    return (tuple((r.start, r.length) for r in row.runs), row.width)


def decode_row(wire: RowWire) -> RLERow:
    pairs, width = wire
    return RLERow.from_pairs(pairs, width=width)


def encode_result(result: XorRunResult) -> ResultWire:
    return (
        tuple(result.result.to_pairs()),
        result.result.width,
        result.iterations,
        result.k1,
        result.k2,
        result.n_cells,
        result.stats.items(),
    )


def decode_result(wire: ResultWire) -> XorRunResult:
    pairs, width, iterations, k1, k2, n_cells, stat_items = wire
    return XorRunResult(
        result=RLERow.from_pairs(pairs, width=width),
        iterations=iterations,
        k1=k1,
        k2=k2,
        n_cells=n_cells,
        stats=ActivityStats.from_items(stat_items),
    )


def encode_span(
    name: str, duration_s: float, attributes: Dict[str, object]
) -> SpanWire:
    """One measured span as a builtin-typed wire tuple.  Attribute
    values are clamped to JSON scalars (stringified otherwise) so the
    tuple stays pickle-free and trace exports stay schema-valid."""
    items = []
    for key, value in sorted(attributes.items()):
        if value is not None and not isinstance(value, (bool, int, float, str)):
            value = str(value)
        items.append((str(key), value))
    return (str(name), float(duration_s), tuple(items))


def decode_span(wire: SpanWire) -> Tuple[str, float, Dict[str, object]]:
    """``(name, duration_s, attributes)`` ready for
    :meth:`~repro.obs.tracing.Tracer.record_span`."""
    name, duration_s, items = wire
    return (str(name), float(duration_s), {str(k): v for k, v in items})


def encode_error(exc: BaseException) -> ErrorWire:
    """``(class_name, message)`` — enough to rehydrate the typed error
    on the other side of the boundary."""
    return (type(exc).__name__, str(exc))


def decode_error(wire: ErrorWire) -> ReproError:
    """Rehydrate a worker-side error into the same typed class.

    The name is resolved against :mod:`repro.errors`; anything outside
    the :class:`~repro.errors.ReproError` hierarchy (or unknown — a
    version-skewed worker) degrades to :class:`ServiceError` with the
    original name preserved in the message, so nothing untyped ever
    escapes the IPC boundary.
    """
    import repro.errors as _errors

    name, message = wire
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            # constructors with a different signature (InvariantViolation)
            return ServiceError(f"{name}: {message}")
    return ServiceError(f"worker raised {name}: {message}")


# --------------------------------------------------------------------- #
# The worker process                                                    #
# --------------------------------------------------------------------- #
def worker_main(
    conn: Any,
    worker_id: int,
    options_wire: OptionsWire,
    policy: Any,
    cache_bytes: int,
) -> None:
    """One shard: a :class:`~repro.service.resilience.ResilientDiffService`
    behind a request/reply pipe.  Runs in a child process.

    Messages are ``(kind, seq, payload)`` tuples; every request gets
    exactly one ``("ok", seq, result)`` or ``("err", seq,
    (name, message))`` reply:

    ``("diff_rows", seq, (rows_a, rows_b, ctx))``
        Rows in :data:`RowWire` form plus the request's
        :data:`~repro.obs.context.ContextWire` (``None`` from a
        pre-context peer).  The reply payload is ``(results, spans,
        events)``: a tuple of :data:`ResultWire`, the worker's measured
        :data:`SpanWire` spans for this request (empty when the context
        is unsampled, capped at :data:`MAX_SPANS_PER_REPLY`), and up to
        :data:`MAX_EVENTS_PER_REPLY` drained structured log events in
        :data:`~repro.obs.log.EventWire` form.  Failures — including
        backpressure (``ServiceOverloadError``) and breaker trips —
        come back as typed :data:`ErrorWire` errors; the events they
        generate ship with the worker's next successful reply.
    ``("stream_open", seq, (session_id, policy_wire))``
        Open a streaming session (see :mod:`repro.service.stream`);
        ``policy_wire`` is a
        :data:`~repro.service.stream.StreamPolicyWire` or ``None`` for
        the worker default.  Replies with the session id.
    ``("stream_frame", seq, (session_id, image_wire, ctx_wire))``
        Append one frame (:data:`~repro.service.stream.ImageWire`) to a
        session.  The reply payload mirrors ``diff_rows``:
        ``(frame_delta, spans, events)`` with the delta in
        :data:`~repro.service.stream.FrameDeltaWire` form.  Unknown
        sessions come back as typed
        :class:`~repro.errors.UnknownSessionError`; breaker sheds as
        :class:`~repro.errors.ServiceOverloadError`.
    ``("stream_close", seq, session_id)``
        End a session; replies with its final stats dict.
    ``("stream_stats", seq, session_id_or_None)``
        One session's stats dict, or the worker's aggregate streaming
        stats when the payload is ``None``.
    ``("stats", seq, None)``
        The service's ``stats()`` dict (plain floats).
    ``("snapshot", seq, None)``
        The worker's :class:`~repro.obs.metrics.MetricsSnapshot`
        (frozen builtin dataclasses — picklable by design).
    ``("close", seq, None)``
        Drain, reply, and exit the loop.

    The worker never raises across the pipe: every exception is encoded
    and the loop continues (except ``close``/EOF, which end it).
    """
    from repro.obs.context import decode_context
    from repro.obs.log import StructuredLog, encode_event
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer
    from repro.service.resilience import ResilientDiffService
    from repro.service.stream import (
        StreamingDiffService,
        decode_image,
        decode_stream_policy,
        encode_frame_delta,
    )

    registry = MetricsRegistry()
    worker_gauge = registry.gauge(
        "repro_shard_worker", "shard worker identity (value = worker index)",
        ("worker",),
    )
    worker_gauge.labels(worker=str(worker_id)).set(float(worker_id))
    options = decode_options(options_wire).replace(metrics=registry)
    log = StructuredLog()
    tracer = Tracer()
    service = ResilientDiffService(
        options, policy=policy, cache_bytes=cache_bytes, log=log
    )
    streams = StreamingDiffService(service, metrics=registry, log=log)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:  # front-end died — nothing left to serve
                break
            kind, seq, payload = message
            if kind == "close":
                streams.close()
                service.close()
                conn.send(("ok", seq, None))
                break
            try:
                if kind == "diff_rows":
                    if len(payload) == 3:
                        rows_a_wire, rows_b_wire, ctx_wire = payload
                    else:  # pre-context peer: rows only
                        rows_a_wire, rows_b_wire = payload
                        ctx_wire = None
                    ctx = decode_context(ctx_wire) if ctx_wire is not None else None
                    request_id = ctx.request_id if ctx is not None else None
                    sampled = ctx.sampled if ctx is not None else True
                    try:
                        with tracer.span(
                            "shard_diff_rows",
                            request_id=request_id,
                            worker=worker_id,
                            rows=len(rows_a_wire),
                        ):
                            results = service.diff_rows(
                                [decode_row(w) for w in rows_a_wire],
                                [decode_row(w) for w in rows_b_wire],
                                request_id=request_id,
                            )
                    except BaseException:
                        # the typed error crosses as ErrorWire below; the
                        # failure's spans are dropped (nothing to stitch)
                        # and its log events ride the next ok reply
                        del tracer.spans[:]
                        raise
                    # request_admitted/request_completed land in `log`
                    # from the resilience layer's _observe_request
                    finished = tracer.spans[:MAX_SPANS_PER_REPLY]
                    del tracer.spans[:]
                    spans_wire = (
                        tuple(
                            encode_span(s.name, s.duration, s.attributes)
                            for s in finished
                        )
                        if sampled
                        else ()
                    )
                    events_wire = tuple(
                        encode_event(r) for r in log.drain(MAX_EVENTS_PER_REPLY)
                    )
                    reply: Any = (
                        tuple(encode_result(r) for r in results),
                        spans_wire,
                        events_wire,
                    )
                elif kind == "stream_open":
                    session_id, policy_wire = payload
                    reply = streams.open(
                        session_id=session_id,
                        policy=(
                            decode_stream_policy(policy_wire)
                            if policy_wire is not None
                            else None
                        ),
                    )
                elif kind == "stream_frame":
                    session_id, image_wire, ctx_wire = payload
                    ctx = decode_context(ctx_wire) if ctx_wire is not None else None
                    request_id = ctx.request_id if ctx is not None else None
                    sampled = ctx.sampled if ctx is not None else True
                    try:
                        with tracer.span(
                            "shard_stream_frame",
                            request_id=request_id,
                            session_id=session_id,
                            worker=worker_id,
                        ):
                            delta = streams.append_frame(
                                session_id,
                                decode_image(image_wire),
                                request_id=request_id,
                            )
                    except BaseException:
                        del tracer.spans[:]
                        raise
                    finished = tracer.spans[:MAX_SPANS_PER_REPLY]
                    del tracer.spans[:]
                    spans_wire = (
                        tuple(
                            encode_span(s.name, s.duration, s.attributes)
                            for s in finished
                        )
                        if sampled
                        else ()
                    )
                    events_wire = tuple(
                        encode_event(r) for r in log.drain(MAX_EVENTS_PER_REPLY)
                    )
                    reply = (encode_frame_delta(delta), spans_wire, events_wire)
                elif kind == "stream_close":
                    reply = streams.close_session(payload)
                elif kind == "stream_stats":
                    if payload is None:
                        reply = streams.stats()
                    else:
                        reply = streams.session_stats(payload)
                elif kind == "stats":
                    reply = service.stats()
                elif kind == "snapshot":
                    reply = registry.snapshot()
                elif kind == "ping":
                    reply = worker_id
                else:
                    raise ServiceError(f"unknown request kind {kind!r}")
            except BaseException as exc:  # everything crosses as ErrorWire
                conn.send(("err", seq, encode_error(exc)))
            else:
                conn.send(("ok", seq, reply))
    finally:
        conn.close()
