"""Request coalescing: many callers, one batch per tick.

The batched engine's whole advantage is width — stepping many lanes per
NumPy operation — but a *service* receives rows one request at a time.
:class:`RowDiffBatcher` closes that gap: submissions land in a bounded
queue, a single worker thread drains it once per tick (up to
``max_batch`` requests, waiting at most ``max_latency`` seconds for
stragglers), serves what it can from the :class:`~repro.service.cache.DiffCache`,
dedupes identical pending pairs, and runs the remainder as **one**
:class:`~repro.core.batched.BatchedXorEngine` batch.  Callers get
:class:`concurrent.futures.Future` objects back, so a hundred threads
submitting concurrently cost one batch, not a hundred row runs.

Backpressure is explicit: the queue is bounded (``max_pending``) and a
full queue raises :class:`~repro.errors.ServiceOverloadError` instead of
buffering without limit — callers retry or shed load.

Determinism note: a batched run sizes its lanes to the *widest* pair in
the batch, so the raw per-row ``n_cells`` would depend on which requests
happened to share a tick.  :func:`compute_row_diffs` therefore rewrites
``n_cells`` to the per-row :func:`~repro.core.machine.default_cell_count`
whenever the options leave sizing automatic.  Iterations, stats and the
result row are already batch-width-invariant (the engine's active-lane
mask guarantees it; the equivalence tests assert it), so after this
rewrite a result is a pure function of ``(row_a, row_b, options)`` —
exactly what a content-addressed cache requires.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError, ServiceOverloadError
from repro.rle.row import RLERow
from repro.core.api import row_diff
from repro.core.batched import BatchedXorEngine
from repro.core.machine import XorRunResult, default_cell_count
from repro.core.options import DiffOptions
from repro.service.cache import CacheKey, DiffCache, row_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ComputeFn", "compute_row_diffs", "RowDiffBatcher"]

#: Signature of the engine-batch compute hook: ``(options, rows_a,
#: rows_b) -> results``.  :func:`compute_row_diffs` is the default;
#: :class:`~repro.service.chaos.ChaosEngine` and the retry wrapper of
#: :class:`~repro.service.resilience.ResilientDiffService` are drop-in
#: replacements, which is how faults and recovery policies reach the
#: serving path without mocks.
ComputeFn = Callable[
    [DiffOptions, Sequence[RLERow], Sequence[RLERow]], List[XorRunResult]
]

#: Default coalescing window: how long the worker waits for more
#: requests after the first one of a tick arrives.
DEFAULT_MAX_LATENCY = 0.002

#: Default maximum requests per engine batch.
DEFAULT_MAX_BATCH = 256

#: Default bound on queued-but-unserved requests before
#: :class:`~repro.errors.ServiceOverloadError` fires.
DEFAULT_MAX_PENDING = 4096


def compute_row_diffs(
    options: DiffOptions,
    rows_a: Sequence[RLERow],
    rows_b: Sequence[RLERow],
) -> List[XorRunResult]:
    """Fresh (uncached) diffs for ``len(rows_a)`` row pairs.

    The ``"batched"`` engine runs all pairs as one batch; the per-row
    engines loop.  Observability handles are stripped first — the
    service records through its own cache/batch metrics, and results
    must not depend on who was watching.  With automatic sizing
    (``options.n_cells is None``) the batched engine's per-row
    ``n_cells`` is rewritten to
    :func:`~repro.core.machine.default_cell_count` so the result is
    independent of batch composition (see the module docstring).
    """
    opts = options.without_observability()
    if opts.engine == "batched":
        results = BatchedXorEngine(n_cells=opts.n_cells).diff_rows(
            list(rows_a), list(rows_b)
        )
        if opts.n_cells is None:
            results = [
                replace(r, n_cells=default_cell_count(r.k1, r.k2)) for r in results
            ]
        return results
    return [row_diff(ra, rb, options=opts) for ra, rb in zip(rows_a, rows_b)]


class _Request:
    """One pending row pair and the future its caller is waiting on."""

    __slots__ = ("row_a", "row_b", "future")

    def __init__(self, row_a: RLERow, row_b: RLERow) -> None:
        self.row_a = row_a
        self.row_b = row_b
        self.future: "Future[XorRunResult]" = Future()


class RowDiffBatcher:
    """A worker thread that coalesces row-diff requests into batches.

    Parameters
    ----------
    options:
        The :class:`~repro.core.options.DiffOptions` every request in
        this batcher runs under (one batcher = one options bundle; the
        :class:`~repro.service.DiffService` owns the mapping).
    cache:
        Optional :class:`~repro.service.cache.DiffCache` consulted
        before computing and updated after.  ``None`` disables caching
        (every request computes).
    max_batch:
        Hard cap on requests per engine batch.
    max_latency:
        Seconds the worker waits for more requests after a tick's first
        arrival — the latency cost of coalescing, bounded and
        configurable.
    max_pending:
        Queue bound; :meth:`submit` past it raises
        :class:`~repro.errors.ServiceOverloadError`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; batch
        sizes land in the ``repro_service_batch_size`` histogram and
        request outcomes in ``repro_service_requests_total``
        (``outcome`` = ``hit`` / ``computed`` / ``coalesced``).
    compute:
        The :data:`ComputeFn` run per engine batch (default
        :func:`compute_row_diffs`).  Injection point for the chaos and
        resilience layers.
    """

    def __init__(
        self,
        options: DiffOptions,
        cache: Optional[DiffCache] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        metrics: "Optional[MetricsRegistry]" = None,
        compute: Optional[ComputeFn] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency < 0:
            raise ServiceError(f"max_latency must be >= 0, got {max_latency}")
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self.options = options.without_observability()
        self.cache = cache
        self._compute: ComputeFn = (
            compute if compute is not None else compute_row_diffs
        )
        self.max_batch = max_batch
        self.max_latency = max_latency
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue(
            maxsize=max_pending
        )
        self._closed = False
        self._close_lock = threading.Lock()
        #: Guards the ``batches``/``requests`` totals: they are bumped
        #: from the worker thread (queued path) *and* from caller
        #: threads (:meth:`record_outcomes`, the service's bulk path),
        #: and unsynchronized ``+=`` loses increments under concurrency.
        self._stats_lock = threading.Lock()
        self.batches = 0
        self.requests = 0
        self._metrics = metrics
        if metrics is not None:
            outcomes = metrics.counter(
                "repro_service_requests_total",
                "row-diff service requests by outcome",
                ("outcome",),
            )
            self._m_hit = outcomes.labels(outcome="hit")
            self._m_computed = outcomes.labels(outcome="computed")
            self._m_coalesced = outcomes.labels(outcome="coalesced")
            self._m_batch_size = metrics.histogram(
                "repro_service_batch_size",
                "unique misses computed per engine batch (cache hits and "
                "coalesced duplicates excluded)",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
            ).labels()
        self._worker = threading.Thread(
            target=self._run, name="repro-diff-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Submission                                                         #
    # ------------------------------------------------------------------ #
    def submit(self, row_a: RLERow, row_b: RLERow) -> "Future[XorRunResult]":
        """Enqueue one row pair; the returned future resolves to the
        same :class:`~repro.core.machine.XorRunResult` a direct
        :func:`~repro.core.api.row_diff` call would produce.

        Raises :class:`~repro.errors.ServiceOverloadError` when the
        queue is full and :class:`~repro.errors.ServiceError` after
        :meth:`close`.
        """
        with self._close_lock:
            if self._closed:
                raise ServiceError("submit() after close()")
        request = _Request(row_a, row_b)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise ServiceOverloadError(
                f"request queue full ({self._queue.maxsize} pending); "
                f"retry later or raise max_pending"
            ) from None
        return request.future

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting requests, drain the queue, join the worker.

        Idempotent.  Already-queued requests complete; their futures
        resolve normally.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=timeout)
        # A submit() racing close() can slip a request in behind the
        # sentinel; fail it explicitly rather than strand its future.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                return
            if leftover is not None:
                leftover.future.set_exception(ServiceError("service closed"))

    def __enter__(self) -> "RowDiffBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Accounting shared with the service's bulk (whole-image) path       #
    # ------------------------------------------------------------------ #
    def record_outcomes(
        self, hit: int = 0, computed: int = 0, coalesced: int = 0
    ) -> None:
        """Fold externally served requests into this batcher's totals
        and metric families.

        :meth:`DiffService.diff_images <repro.service.DiffService.diff_images>`
        serves whole images as one bulk cache pass + engine batch
        (no queue round-trip per row) but reports through the same
        counters, so ``stats()`` and ``repro_service_requests_total``
        cover every request however it was served.
        """
        with self._stats_lock:
            self.requests += hit + computed + coalesced
            if computed:
                self.batches += 1
        if self._metrics is not None:
            if hit:
                self._m_hit.inc(hit)
            if computed:
                self._m_computed.inc(computed)
                self._m_batch_size.observe(float(computed))
            if coalesced:
                self._m_coalesced.inc(coalesced)

    def totals(self) -> Tuple[int, int]:
        """Consistent ``(requests, batches)`` snapshot under the stats
        lock — the read-side counterpart of the locked ``+=`` above.
        Readers outside this class must use it rather than the bare
        attributes, or they can observe one total mid-update relative
        to the other.
        """
        with self._stats_lock:
            return self.requests, self.batches

    # ------------------------------------------------------------------ #
    # Worker                                                             #
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            head = self._queue.get()
            if head is None:
                return
            batch = [head]
            deadline = time.monotonic() + self.max_latency
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    stop = True
                    break
                batch.append(item)
            # the tick is over — take whatever already queued, without waiting
            while not stop and len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    stop = True
                    break
                batch.append(item)
            self._serve(batch)
            if stop:
                return

    def _serve(self, batch: List[_Request]) -> None:
        try:
            self._serve_inner(batch)
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _serve_inner(self, batch: List[_Request]) -> None:
        with self._stats_lock:
            self.requests += len(batch)
        # 1. cache hits resolve immediately; misses queue for compute,
        #    deduped so identical pending pairs cost one lane.
        pending: "Dict[CacheKey, List[_Request]]" = {}
        order: List[Tuple[CacheKey, _Request]] = []
        for request in batch:
            key = self._key(request.row_a, request.row_b)
            if self.cache is not None:
                hit = self.cache.get(key, request.row_a, request.row_b)
                if hit is not None:
                    if self._metrics is not None:
                        self._m_hit.inc()
                    request.future.set_result(hit)
                    continue
            waiters = pending.get(key)
            if waiters is None:
                pending[key] = [request]
                order.append((key, request))
                if self._metrics is not None:
                    self._m_computed.inc()
            else:
                waiters.append(request)
                if self._metrics is not None:
                    self._m_coalesced.inc()
        if not order:
            return
        # 2. one engine batch over the unique misses.
        with self._stats_lock:
            self.batches += 1
        if self._metrics is not None:
            self._m_batch_size.observe(float(len(order)))
        results = self._compute(
            self.options,
            [request.row_a for _, request in order],
            [request.row_b for _, request in order],
        )
        # A ComputeFn that returns the wrong number of results would
        # silently drop the trailing requests under zip — their futures
        # would never resolve and callers would block forever.  Fail the
        # whole batch with a typed error instead (the _serve wrapper
        # forwards it to every unresolved future).
        if len(results) != len(order):
            raise ServiceError(
                f"compute returned {len(results)} result(s) for "
                f"{len(order)} unique miss(es); refusing to serve a "
                f"mismatched batch"
            )
        # 3. store and resolve every waiter.
        for (key, request), result in zip(order, results):
            if self.cache is not None:
                self.cache.put(key, request.row_a, request.row_b, result)
            for waiter in pending[key]:
                waiter.future.set_result(result)

    def _key(self, row_a: RLERow, row_b: RLERow) -> CacheKey:
        if self.cache is not None:
            return self.cache.key_for(row_a, row_b, self.options)
        return (
            row_fingerprint(row_a),
            row_fingerprint(row_b),
            self.options.cache_key(),
        )
