"""Streaming frame-delta sessions: the temporal serving surface.

The one-shot ``diff_rows`` vocabulary treats every request as new work:
the caller ships *two* full frames over the wire and gets one XOR back.
Video and sensor streams are the other shape entirely — consecutive
frames are nearly identical, so the natural unit is a *session*: the
server keeps the previous frame resident (its rows hot in the
content-addressed :class:`~repro.service.cache.DiffCache`), the client
ships only the newest frame, and the reply is the tiny XOR delta.  The
paper's decompression-free XOR is exactly this change detector, and the
delta chain it produces (:class:`~repro.rle.delta.DeltaSequence`) *is*
the compressed recording: key frame + deltas, random access by prefix
XOR (Theorem 3 associativity), never a decompressed bitmap between hops.

:class:`StreamingDiffService` manages the sessions:

* every appended frame is diffed against the session tail **through the
  underlying diff service** (:class:`~repro.service.DiffService` or
  :class:`~repro.service.resilience.ResilientDiffService`), so caching,
  batching, deadlines, retries and breaker admission all apply to the
  streaming path unchanged — a breaker-open worker sheds
  ``stream_frame`` with the same typed
  :class:`~repro.errors.ServiceOverloadError` as any other op;
* key frames are picked **adaptively from measured diff density**: when
  the runs accumulated in the chain since the last key exceed
  ``rekey_ratio`` times the key frame's own runs (or the chain hits
  ``max_chain``), the session rekeys on the newest frame — static
  scenes keep one key forever, a scene cut rekeys immediately;
* accounting lands in the ``repro_stream_*`` metric families and the
  structured log (``stream_opened`` / ``stream_rekey`` /
  ``stream_closed`` events), keyed by the session id that also serves
  as every stream request's trace ``parent_id``
  (:class:`~repro.obs.context.RequestContext`).

In the sharded tier a session lives on exactly one shard — the
front-end routes by session id on the consistent-hash ring (see
:meth:`repro.service.frontend.ShardedDiffService.stream_open`), so the
session's key frame rows stay hot in that one worker's cache.  The wire
codecs at the bottom of this module follow the builtin-types-only
discipline of :mod:`repro.service.shard` (rule RLE103 covers this
module too).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.errors import (
    GeometryError,
    ServiceError,
    UnknownSessionError,
)
from repro.rle.delta import DeltaSequence
from repro.rle.image import RLEImage
from repro.obs.context import new_request_id
from repro.service.resilience import ResilientDiffService
from repro.service.service import DiffService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.log import StructuredLog
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "StreamPolicy",
    "FrameDelta",
    "StreamSession",
    "StreamingDiffService",
    "ImageWire",
    "FrameDeltaWire",
    "StreamPolicyWire",
    "encode_image",
    "decode_image",
    "encode_frame_delta",
    "decode_frame_delta",
    "encode_stream_policy",
    "decode_stream_policy",
]

#: The diff backends a streaming service can sit on.  Both expose
#: ``diff_images``; the resilient one additionally threads the request
#: id into its structured-log events.
DiffBackend = Union[DiffService, ResilientDiffService]


@dataclass(frozen=True)
class StreamPolicy:
    """When a session replaces its key frame, as one frozen value.

    The decision input is *measured diff density*: every appended delta
    adds its run count to the chain's total, and the chain rekeys when
    that total crosses ``rekey_ratio`` times the current key frame's
    run count.  A static scene (deltas near zero runs) never rekeys; a
    scene cut (delta as big as the frame) rekeys on the spot.
    ``max_chain`` bounds chain length regardless, so prefix-XOR random
    access and replay-from-key stay O(``max_chain``).
    """

    #: Rekey when ``delta runs since key > rekey_ratio * key runs``.
    rekey_ratio: float = 1.0
    #: Hard cap on deltas per key frame (>= 1).
    max_chain: int = 64

    def __post_init__(self) -> None:
        if self.rekey_ratio <= 0.0:
            raise ServiceError(
                f"rekey_ratio must be > 0, got {self.rekey_ratio}"
            )
        if self.max_chain < 1:
            raise ServiceError(
                f"max_chain must be >= 1, got {self.max_chain}"
            )


@dataclass(frozen=True)
class FrameDelta:
    """What one appended frame cost and produced.

    ``delta`` is what crosses the wire back to the caller: the full
    frame for the opening key frame (``frame_index`` 0), the XOR delta
    against the previous frame otherwise.  ``rekeyed`` reports that the
    *server-side chain* replaced its key frame with this frame — the
    client's decode is unaffected (deltas always chain frame-to-frame),
    but a subscriber joining now would start from this key.
    """

    frame_index: int
    delta: RLEImage
    rekeyed: bool
    #: Runs in ``delta`` (the shipped payload size, in paper units).
    delta_runs: int
    #: Runs in the session's current key frame.
    key_runs: int


class StreamSession:
    """One client's delta chain: key frame, deltas, and rekey state.

    All mutation happens under the instance lock — the TCP executor may
    dispatch two ``stream_frame`` requests for the same session from
    different threads, and the chain append + rekey decision must be
    atomic per frame.
    """

    def __init__(self, session_id: str, policy: StreamPolicy) -> None:
        self.session_id = session_id
        self.policy = policy
        self._lock = threading.Lock()
        self._sequence: Optional[DeltaSequence] = None
        self._frames = 0
        self._rekeys = 0
        self._raw_runs = 0
        self._shipped_runs = 0
        self._delta_runs_since_key = 0

    # ------------------------------------------------------------------ #
    @property
    def tail(self) -> Optional[RLEImage]:
        """The most recent decoded frame (``None`` before any frame)."""
        with self._lock:
            if self._sequence is None:
                return None
            return self._sequence.frame(len(self._sequence) - 1)

    def frame(self, t: int) -> RLEImage:
        """Random access into the *current chain* (prefix XOR from the
        key frame); ``t`` counts from the current key, not from the
        session's first frame."""
        with self._lock:
            if self._sequence is None:
                raise UnknownSessionError(
                    f"session {self.session_id!r} holds no frames yet"
                )
            return self._sequence.frame(t)

    def chain_len(self) -> int:
        with self._lock:
            return 0 if self._sequence is None else len(self._sequence)

    # ------------------------------------------------------------------ #
    def open_key(self, frame: RLEImage) -> FrameDelta:
        """Record the opening frame (it is its own key and its own
        shipped payload)."""
        with self._lock:
            if self._sequence is not None:
                raise ServiceError(
                    f"session {self.session_id!r} already holds a key frame"
                )
            self._sequence = DeltaSequence([frame])
            self._frames = 1
            self._raw_runs = frame.total_runs
            self._shipped_runs = frame.total_runs
            self._delta_runs_since_key = 0
            return FrameDelta(
                frame_index=0,
                delta=frame,
                rekeyed=True,
                delta_runs=frame.total_runs,
                key_runs=frame.total_runs,
            )

    def append_delta(self, frame: RLEImage, delta: RLEImage) -> FrameDelta:
        """Append one computed delta and apply the rekey policy.

        ``frame`` is the decoded new tail (the caller already holds it
        — it *sent* it); ``delta`` is the XOR against the previous
        tail.  Returns the :class:`FrameDelta` describing the append.
        """
        with self._lock:
            if self._sequence is None:
                raise ServiceError(
                    f"session {self.session_id!r} has no key frame yet"
                )
            self._sequence.append_delta(delta)
            index = self._frames
            self._frames += 1
            self._raw_runs += frame.total_runs
            self._shipped_runs += delta.total_runs
            self._delta_runs_since_key += delta.total_runs
            key_runs = self._sequence.key.total_runs
            rekeyed = (
                self._delta_runs_since_key
                > self.policy.rekey_ratio * key_runs
                or len(self._sequence) > self.policy.max_chain
            )
            if rekeyed:
                self._sequence = self._sequence.rekey(
                    len(self._sequence) - 1
                )
                self._rekeys += 1
                self._delta_runs_since_key = 0
                key_runs = self._sequence.key.total_runs
            return FrameDelta(
                frame_index=index,
                delta=delta,
                rekeyed=rekeyed,
                delta_runs=delta.total_runs,
                key_runs=key_runs,
            )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Counters as plain floats (wire- and JSON-safe)."""
        with self._lock:
            chain = 0 if self._sequence is None else len(self._sequence)
            key_runs = (
                0 if self._sequence is None else self._sequence.key.total_runs
            )
            shipped = self._shipped_runs
            return {
                "frames": float(self._frames),
                "rekeys": float(self._rekeys),
                "chain_len": float(chain),
                "key_runs": float(key_runs),
                "raw_runs": float(self._raw_runs),
                "shipped_runs": float(shipped),
                "delta_runs_since_key": float(self._delta_runs_since_key),
                "compression_ratio": (
                    self._raw_runs / shipped if shipped else 1.0
                ),
            }


class StreamingDiffService:
    """Frame-stream sessions over a cached/resilient diff backend.

    Parameters
    ----------
    backend:
        The :class:`~repro.service.DiffService` or
        :class:`~repro.service.resilience.ResilientDiffService` that
        computes every frame delta.  The streaming layer never XORs
        around it — cache hits, retries, deadlines and breaker
        admission all shape the streaming path.  The backend's
        lifecycle belongs to the caller (closing this service does not
        close the backend).
    policy:
        Default :class:`StreamPolicy` for sessions that do not bring
        their own.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the
        ``repro_stream_*`` families land here.
    log:
        Optional :class:`~repro.obs.log.StructuredLog` for the
        ``stream_opened`` / ``stream_rekey`` / ``stream_closed``
        events.
    """

    def __init__(
        self,
        backend: DiffBackend,
        policy: Optional[StreamPolicy] = None,
        metrics: "Optional[MetricsRegistry]" = None,
        log: "Optional[StructuredLog]" = None,
    ) -> None:
        self._backend = backend
        self._resilient = isinstance(backend, ResilientDiffService)
        self.policy = policy if policy is not None else StreamPolicy()
        self._log = log
        self._lock = threading.Lock()
        self._sessions: Dict[str, StreamSession] = {}
        self._closed = False
        self._metrics = metrics
        if metrics is not None:
            self._m_opened = metrics.counter(
                "repro_stream_sessions_opened_total",
                "streaming sessions opened",
            ).labels()
            self._m_closed = metrics.counter(
                "repro_stream_sessions_closed_total",
                "streaming sessions closed",
            ).labels()
            self._m_open = metrics.gauge(
                "repro_stream_sessions_open",
                "streaming sessions currently open",
            ).labels()
            self._m_frames = metrics.counter(
                "repro_stream_frames_total",
                "frames appended across all streaming sessions",
            ).labels()
            self._m_rekeys = metrics.counter(
                "repro_stream_rekeys_total",
                "adaptive key-frame replacements across all sessions",
            ).labels()
            self._m_raw_runs = metrics.counter(
                "repro_stream_raw_runs_total",
                "runs in the frames as received (pre-delta size)",
            ).labels()
            self._m_shipped_runs = metrics.counter(
                "repro_stream_shipped_runs_total",
                "runs actually shipped back (key frames + deltas)",
            ).labels()

    # ------------------------------------------------------------------ #
    # Session lifecycle                                                  #
    # ------------------------------------------------------------------ #
    def open(
        self,
        session_id: Optional[str] = None,
        policy: Optional[StreamPolicy] = None,
    ) -> str:
        """Create a session; returns its id (generated when ``None``).

        Opening an id that is already open is a typed
        :class:`~repro.errors.ServiceError` — sessions are
        single-writer, and a duplicate open is a routing bug.
        """
        if session_id is None:
            session_id = new_request_id()
        session = StreamSession(
            session_id, policy if policy is not None else self.policy
        )
        with self._lock:
            if self._closed:
                raise ServiceError("StreamingDiffService is closed")
            if session_id in self._sessions:
                raise ServiceError(
                    f"stream session {session_id!r} is already open"
                )
            self._sessions[session_id] = session
            open_count = len(self._sessions)
        if self._metrics is not None:
            self._m_opened.inc()
            self._m_open.set(float(open_count))
        if self._log is not None:
            self._log.log(
                "stream_opened",
                request_id=session_id,
                level="info",
                rekey_ratio=session.policy.rekey_ratio,
                max_chain=session.policy.max_chain,
            )
        return session_id

    def _session(self, session_id: str) -> StreamSession:
        with self._lock:
            if self._closed:
                raise ServiceError("StreamingDiffService is closed")
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"unknown stream session {session_id!r} — it was never "
                f"opened here, was closed, or was lost with its shard; "
                f"reopen the session to continue"
            )
        return session

    def close_session(self, session_id: str) -> Dict[str, float]:
        """End one session; returns its final stats."""
        with self._lock:
            if self._closed:
                raise ServiceError("StreamingDiffService is closed")
            session = self._sessions.pop(session_id, None)
            open_count = len(self._sessions)
        if session is None:
            raise UnknownSessionError(
                f"unknown stream session {session_id!r} — nothing to close"
            )
        stats = session.stats()
        if self._metrics is not None:
            self._m_closed.inc()
            self._m_open.set(float(open_count))
        if self._log is not None:
            self._log.log(
                "stream_closed",
                request_id=session_id,
                level="info",
                frames=int(stats["frames"]),
                rekeys=int(stats["rekeys"]),
            )
        return stats

    def close(self) -> None:
        """Drop every session.  The backend stays open (not owned)."""
        with self._lock:
            self._closed = True
            self._sessions.clear()
        if self._metrics is not None:
            self._m_open.set(0.0)

    def __enter__(self) -> "StreamingDiffService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The streaming op                                                   #
    # ------------------------------------------------------------------ #
    def append_frame(
        self,
        session_id: str,
        frame: RLEImage,
        request_id: Optional[str] = None,
    ) -> FrameDelta:
        """Append one frame; returns the delta the caller should ship.

        The delta is computed through the backend
        (``diff_images(tail, frame)``) so the session's resident rows
        hit the content-addressed cache and every resilience policy
        applies; the chain append plus rekey decision then run
        atomically inside the session.  ``request_id`` stamps the
        backend's log events — the sharded tier passes the per-request
        context id whose ``parent_id`` is this session's id.
        """
        session = self._session(session_id)
        tail = session.tail
        if tail is None:
            result = session.open_key(frame)
        else:
            if frame.shape != tail.shape:
                raise GeometryError(
                    f"frame shape {frame.shape} != session shape {tail.shape}"
                )
            if self._resilient:
                assert isinstance(self._backend, ResilientDiffService)
                diff = self._backend.diff_images(
                    tail, frame, request_id=request_id
                )
            else:
                diff = self._backend.diff_images(tail, frame)
            result = session.append_delta(frame, diff.image)
        if self._metrics is not None:
            self._m_frames.inc()
            self._m_raw_runs.inc(float(frame.total_runs))
            self._m_shipped_runs.inc(float(result.delta_runs))
            if result.rekeyed and result.frame_index > 0:
                self._m_rekeys.inc()
        if (
            self._log is not None
            and result.rekeyed
            and result.frame_index > 0
        ):
            self._log.log(
                "stream_rekey",
                request_id=session_id,
                level="debug",
                frame_index=result.frame_index,
                key_runs=result.key_runs,
            )
        return result

    def frame(self, session_id: str, t: int) -> RLEImage:
        """Random access into a session's current chain (prefix XOR)."""
        return self._session(session_id).frame(t)

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def session_stats(self, session_id: str) -> Dict[str, float]:
        """One session's counters (typed error for unknown ids)."""
        return self._session(session_id).stats()

    def stats(self) -> Dict[str, float]:
        """Aggregate counters over every *open* session, plus the
        session totals themselves."""
        with self._lock:
            sessions = list(self._sessions.values())
        totals: Dict[str, float] = {"sessions_open": float(len(sessions))}
        for session in sessions:
            for key, value in session.stats().items():
                if key == "compression_ratio":
                    continue
                totals[key] = totals.get(key, 0.0) + value
        shipped = totals.get("shipped_runs", 0.0)
        totals["compression_ratio"] = (
            totals.get("raw_runs", 0.0) / shipped if shipped else 1.0
        )
        return totals


# --------------------------------------------------------------------- #
# Wire codecs (builtin types only — rule RLE103 covers this module)     #
# --------------------------------------------------------------------- #

#: One image on the wire: per-row ``(start, length)`` pair tuples plus
#: the shared pixel width.
ImageWire = Tuple[Tuple[Tuple[Tuple[int, int], ...], ...], int]

#: One :class:`FrameDelta` on the wire:
#: ``(frame_index, rekeyed, delta image, delta_runs, key_runs)``.
FrameDeltaWire = Tuple[int, bool, ImageWire, int, int]

#: One :class:`StreamPolicy` on the wire: ``(rekey_ratio, max_chain)``.
StreamPolicyWire = Tuple[float, int]


def encode_image(image: RLEImage) -> ImageWire:
    return (
        tuple(
            tuple((run.start, run.length) for run in row.runs)
            for row in image
        ),
        image.width,
    )


def decode_image(wire: ImageWire) -> RLEImage:
    rows_wire, width = wire
    return RLEImage.from_row_pairs(
        [
            [(int(start), int(length)) for start, length in pairs]
            for pairs in rows_wire
        ],
        width=int(width),
    )


def encode_frame_delta(delta: FrameDelta) -> FrameDeltaWire:
    return (
        int(delta.frame_index),
        bool(delta.rekeyed),
        encode_image(delta.delta),
        int(delta.delta_runs),
        int(delta.key_runs),
    )


def decode_frame_delta(wire: FrameDeltaWire) -> FrameDelta:
    frame_index, rekeyed, image_wire, delta_runs, key_runs = wire
    return FrameDelta(
        frame_index=int(frame_index),
        delta=decode_image(image_wire),
        rekeyed=bool(rekeyed),
        delta_runs=int(delta_runs),
        key_runs=int(key_runs),
    )


def encode_stream_policy(policy: StreamPolicy) -> StreamPolicyWire:
    return (float(policy.rekey_ratio), int(policy.max_chain))


def decode_stream_policy(wire: StreamPolicyWire) -> StreamPolicy:
    rekey_ratio, max_chain = wire
    return StreamPolicy(
        rekey_ratio=float(rekey_ratio), max_chain=int(max_chain)
    )
