"""The long-lived differencing service.

A deployment of the paper's array is not a function call — it is a
fixture: one physical array, loaded row pair after row pair, serving
whatever the host pipeline sends.  :class:`DiffService` is the software
analogue.  Construct it once with a
:class:`~repro.core.options.DiffOptions`, keep it alive, and push row or
image diffs through it; behind the single entry point sit the
content-addressed result cache (:class:`~repro.service.cache.DiffCache`)
and the request batcher (:class:`~repro.service.batcher.RowDiffBatcher`),
so repeated content is never recomputed and concurrent submissions share
engine batches.

The contract is strict: a served result is **byte-identical** to what
the same service would compute with caching disabled (the property tests
assert it field by field).  With an explicit ``n_cells`` it is also
identical to a direct :func:`~repro.core.pipeline.diff_images` call;
with automatic sizing the only difference is the documented ``n_cells``
normalization (see :mod:`repro.service.batcher`).

Usage::

    from repro.core.options import DiffOptions
    from repro.service import DiffService

    with DiffService(DiffOptions(engine="batched")) as svc:
        first = svc.diff_images(frame0, frame1)
        again = svc.diff_images(frame0, frame1)   # served from cache
        print(svc.cache.hit_rate)                 # 1.0 second time round
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from concurrent.futures import Future

from repro.errors import GeometryError, ServiceError
from repro.rle.image import RLEImage
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import IMAGE_DEFAULTS, DiffOptions, resolve_options
from repro.core.pipeline import ImageDiffResult
from repro.obs.context import new_request_id
from repro.obs.log import StructuredLog
from repro.service.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    ComputeFn,
    RowDiffBatcher,
    compute_row_diffs,
)
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheKey, DiffCache
from repro.service.store import DEFAULT_DISK_BUDGET, RowStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["DiffService"]


def _check_computed(got: int, expected: int) -> None:
    """The ComputeFn contract: exactly one result per unique miss.

    A short return silently truncates the batch under ``zip``; a long
    one silently discards work.  Both indicate a broken compute hook
    (or a fault injector left attached), so both fail the request with
    a typed error instead of serving a wrong-shaped answer.
    """
    if got != expected:
        raise ServiceError(
            f"compute returned {got} result(s) for {expected} unique "
            f"miss(es); refusing to serve a mismatched batch"
        )


class DiffService:
    """Cached, batched row/image differencing behind one entry point.

    Parameters
    ----------
    options:
        The :class:`~repro.core.options.DiffOptions` every request runs
        under (default: the image defaults — batched engine, automatic
        sizing).  A bare engine-name string is accepted the same way the
        functional API accepts one.  The ``metrics`` handle, if set, is
        where the service's cache and batch metric families land; the
        other observability handles are stripped (results served from a
        shared cache cannot depend on one caller's tracer or probe —
        instrument the service, not individual requests).
    cache_bytes:
        Byte budget of the result cache; ``0`` disables caching
        entirely.
    max_batch / max_latency / max_pending:
        Coalescing knobs, forwarded to
        :class:`~repro.service.batcher.RowDiffBatcher`.
    compute:
        The :data:`~repro.service.batcher.ComputeFn` every engine batch
        runs through (default
        :func:`~repro.service.batcher.compute_row_diffs`).  Both the
        queued row path and the bulk image path use it — this is where
        :class:`~repro.service.chaos.ChaosEngine` and the retry wrapper
        of :class:`~repro.service.resilience.ResilientDiffService` plug
        in, *upstream* of the cache so only results that survived the
        wrapper are ever stored.
    log:
        An optional :class:`~repro.obs.log.StructuredLog`.  When set,
        every :meth:`row_diff` / :meth:`diff_rows` request emits
        ``request_admitted``/``request_completed`` events under a
        request id (caller-supplied, or generated via
        :func:`~repro.obs.context.new_request_id`).  Leave unset when
        wrapping with
        :class:`~repro.service.resilience.ResilientDiffService` — the
        wrapper logs the same lifecycle itself.
    store_log:
        An optional :class:`~repro.obs.log.StructuredLog` for the disk
        tier's ``cache_warm`` / ``cache_quarantine`` events only
        (``log`` is used when this is unset).  Exists so a wrapping
        :class:`~repro.service.resilience.ResilientDiffService` can
        route store events to its log without double-emitting the
        request lifecycle.

    When ``options.cache_dir`` is set (and caching is enabled), the
    service opens a :class:`~repro.service.store.RowStore` there and
    attaches it to the cache as a persistent tier: read-through on
    miss, write-behind on eviction, and a full :meth:`DiffCache.flush
    <repro.service.cache.DiffCache.flush>` on :meth:`close` so the next
    process restarts warm.  The store is owned by the service and
    closed (releasing its single-writer lock) with it.
    """

    def __init__(
        self,
        options: Union[DiffOptions, str, None] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        compute: Optional[ComputeFn] = None,
        log: Optional[StructuredLog] = None,
        store_log: Optional[StructuredLog] = None,
    ) -> None:
        opts = resolve_options(options, {}, IMAGE_DEFAULTS, "DiffService")
        self.options = opts.without_observability()
        self.log = log
        self._metrics: "Optional[MetricsRegistry]" = opts.metrics
        self._compute: ComputeFn = (
            compute if compute is not None else compute_row_diffs
        )
        self.store: Optional[RowStore] = None
        if opts.cache_dir is not None and cache_bytes > 0:
            self.store = RowStore(
                opts.cache_dir,
                max_bytes=(
                    opts.disk_budget
                    if opts.disk_budget is not None
                    else DEFAULT_DISK_BUDGET
                ),
                metrics=opts.metrics,
                log=store_log if store_log is not None else log,
            )
        self.cache: Optional[DiffCache] = (
            DiffCache(
                max_bytes=cache_bytes, metrics=opts.metrics, store=self.store
            )
            if cache_bytes > 0
            else None
        )
        self._batcher = RowDiffBatcher(
            self.options,
            cache=self.cache,
            max_batch=max_batch,
            max_latency=max_latency,
            max_pending=max_pending,
            metrics=opts.metrics,
            compute=self._compute,
        )

    # ------------------------------------------------------------------ #
    # Row requests                                                       #
    # ------------------------------------------------------------------ #
    def submit_row_diff(
        self, row_a: RLERow, row_b: RLERow
    ) -> "Future[XorRunResult]":
        """Asynchronous row diff — returns a future so many submissions
        can coalesce into one engine batch.  Raises
        :class:`~repro.errors.ServiceOverloadError` under backpressure.
        """
        return self._batcher.submit(row_a, row_b)

    def row_diff(
        self, row_a: RLERow, row_b: RLERow, request_id: Optional[str] = None
    ) -> XorRunResult:
        """Synchronous row diff (submit + wait)."""
        with self._observe("row_diff", request_id, 1):
            return self.submit_row_diff(row_a, row_b).result()

    # ------------------------------------------------------------------ #
    # Image requests                                                     #
    # ------------------------------------------------------------------ #
    def diff_images(
        self,
        image_a: RLEImage,
        image_b: RLEImage,
        request_id: Optional[str] = None,
    ) -> ImageDiffResult:
        """Difference two equal-shape images through the service.

        An image is already a batch, so this path skips the request
        queue entirely: one bulk pass over the cache (repeated frames
        and static background rows are served without touching an
        engine), then one
        :func:`~repro.service.batcher.compute_row_diffs` batch over the
        deduplicated misses.  Outcomes land in the same counters as
        queued row requests.  The assembled
        :class:`~repro.core.pipeline.ImageDiffResult` matches the
        functional API's, honouring ``options.canonical``.
        """
        if image_a.shape != image_b.shape:
            raise GeometryError(
                f"image shapes differ: {image_a.shape} vs {image_b.shape}"
            )
        row_results = self.diff_rows(
            list(image_a), list(image_b), request_id=request_id
        )
        return ImageDiffResult(
            image=RLEImage(
                (
                    r.canonical_result if self.options.canonical else r.result
                    for r in row_results
                ),
                width=image_a.width,
            ),
            row_results=row_results,
        )

    def diff_rows(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        request_id: Optional[str] = None,
    ) -> List[XorRunResult]:
        """Difference ``len(rows_a)`` row pairs as one bulk request.

        The bulk path under :meth:`diff_images`, exposed directly: one
        cache pass over every pair, one engine batch over the deduped
        misses, results in input order.  This is the request unit the
        sharded tier's workers serve (see :mod:`repro.service.shard`).
        """
        rows_a, rows_b = list(rows_a), list(rows_b)
        if len(rows_a) != len(rows_b):
            raise GeometryError(
                f"row sequences differ in length: {len(rows_a)} vs {len(rows_b)}"
            )
        with self._observe("diff_rows", request_id, len(rows_a)):
            return self._serve_bulk(rows_a, rows_b)

    @contextmanager
    def _observe(
        self, op: str, request_id: Optional[str], units: int
    ) -> Iterator[None]:
        """Emit the admitted/completed event pair around one request
        when a :class:`~repro.obs.log.StructuredLog` is attached (a
        no-op otherwise — the unlogged path costs one attribute check).
        """
        if self.log is None:
            yield
            return
        rid = request_id if request_id is not None else new_request_id()
        started = time.perf_counter()
        self.log.log(
            "request_admitted",
            request_id=rid,
            level="debug",
            op=op,
            tier="base",
            units=units,
        )
        try:
            yield
        except BaseException as exc:
            self.log.log(
                "request_completed",
                request_id=rid,
                level="warning",
                op=op,
                tier="base",
                ok=False,
                error=type(exc).__name__,
                seconds=max(0.0, time.perf_counter() - started),
            )
            raise
        self.log.log(
            "request_completed",
            request_id=rid,
            level="debug",
            op=op,
            tier="base",
            ok=True,
            seconds=max(0.0, time.perf_counter() - started),
        )

    def _serve_bulk(
        self, rows_a: List[RLERow], rows_b: List[RLERow]
    ) -> List[XorRunResult]:
        """Cache-check every pair, compute the deduped misses as one
        engine batch, store, and return results in input order."""
        if not rows_a:
            return []
        if self.cache is None:
            results = self._compute(self.options, rows_a, rows_b)
            _check_computed(len(results), len(rows_a))
            self._batcher.record_outcomes(computed=len(results))
            return results
        served: List[Optional[XorRunResult]] = [None] * len(rows_a)
        waiters: Dict[CacheKey, List[int]] = {}
        order: List[Tuple[CacheKey, int]] = []
        hits = coalesced = 0
        for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
            key = self.cache.key_for(ra, rb, self.options)
            hit = self.cache.get(key, ra, rb)
            if hit is not None:
                served[i] = hit
                hits += 1
                continue
            indices = waiters.get(key)
            if indices is None:
                waiters[key] = [i]
                order.append((key, i))
            else:
                indices.append(i)
                coalesced += 1
        if order:
            computed = self._compute(
                self.options,
                [rows_a[i] for _, i in order],
                [rows_b[i] for _, i in order],
            )
            # A short compute used to be masked here: zip dropped the
            # trailing misses and the leftover None slots were filtered
            # out of the return, yielding an image with fewer rows than
            # its inputs.  Validate the count and raise instead.
            _check_computed(len(computed), len(order))
            for (key, i), result in zip(order, computed):
                self.cache.put(key, rows_a[i], rows_b[i], result)
                for j in waiters[key]:
                    served[j] = result
        self._batcher.record_outcomes(
            hit=hits, computed=len(order), coalesced=coalesced
        )
        unfilled = [i for i, r in enumerate(served) if r is None]
        if unfilled:
            raise ServiceError(
                f"bulk serve left {len(unfilled)} of {len(served)} rows "
                f"unserved (first unfilled index {unfilled[0]}); refusing "
                f"to return a short image"
            )
        return [r for r in served if r is not None]

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle                                          #
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Cache counters plus batcher totals, as one plain dict."""
        info: Dict[str, float] = (
            self.cache.info() if self.cache is not None else {"hit_rate": 0.0}
        )
        # totals() snapshots both counters under the batcher's stats
        # lock; reading the attributes bare here could interleave with a
        # worker-thread bump and pair a fresh `requests` with a stale
        # `batches` (RLE101's cross-class blind spot, handled manually).
        requests, batches = self._batcher.totals()
        info["batches"] = float(batches)
        info["requests"] = float(requests)
        return info

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain pending requests, stop the worker thread, and — with a
        persistent tier — flush the RAM working set to disk and release
        the store's writer lock.  Idempotent; further submissions raise
        :class:`~repro.errors.ServiceError`."""
        self._batcher.close(timeout=timeout)
        if self.store is not None:
            if self.cache is not None:
                self.cache.flush()
            self.store.close()

    def __enter__(self) -> "DiffService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
