"""Content-addressed row-diff caching.

The paper's whole premise is that compressed rows are *cheap to key and
compare*: a row is a short tuple list, so hashing it costs O(k) — tiny
next to even one systolic run — and identical rows are everywhere in
real workloads (static backgrounds between surveillance frames, golden
reference rows in PCB inspection, repeated scan lines in documents).
:class:`DiffCache` exploits that redundancy: results are keyed by
``(fingerprint(row_a), fingerprint(row_b), options)`` so *any* caller
presenting the same content gets the stored
:class:`~repro.core.machine.XorRunResult` back, byte-identical to a
fresh computation (asserted by the service invariant tests).

Correctness before speed: fingerprints are 128-bit BLAKE2b digests, but
the cache never *trusts* them — every entry stores the verbatim input
run pairs and a hit is only served after an exact comparison.  A
fingerprint collision therefore degrades to a counted miss
(``repro_cache_collisions_total``), never a wrong answer; the collision
tests inject a deliberately truncated fingerprint function to exercise
exactly that path.

Eviction is byte-budgeted LRU: every entry's footprint is estimated
from its run counts, and inserts evict least-recently-used entries
until the configured ``max_bytes`` is respected again.  Hit/miss/
eviction/collision counts mirror into an optional
:class:`~repro.obs.metrics.MetricsRegistry` under the ``repro_cache_*``
families (see ``docs/OBSERVABILITY.md``).

All operations are thread-safe — the batcher's worker thread and any
number of submitting threads share one cache.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import DiffOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["row_fingerprint", "DiffCache", "CacheKey"]

#: Default cache budget: 32 MiB of estimated entry footprint.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: A cache key: the two content fingerprints plus the semantic options
#: key (:meth:`repro.core.options.DiffOptions.cache_key`).
CacheKey = Tuple[bytes, bytes, Tuple[str, Optional[int], bool, bool]]

#: Verbatim inputs stored for collision verification: the two rows'
#: run pairs and widths, as builtin tuples.
_Inputs = Tuple[Tuple[Tuple[int, int], ...], Optional[int], Tuple[Tuple[int, int], ...], Optional[int]]

#: Fixed per-entry overhead estimate (key, dict slot, dataclass, result
#: object shells) in bytes.
_ENTRY_OVERHEAD = 512

#: Estimated bytes per stored run: one (start, length) int pair in the
#: verbatim inputs or the result row, plus tuple/Run object overhead.
_RUN_BYTES = 96


def row_fingerprint(row: RLERow) -> bytes:
    """A 128-bit content digest of one RLE row.

    Covers the width and every ``(start, length)`` pair, so two rows
    fingerprint equal iff they are structurally identical (same runs,
    same declared width — ``None`` widths are distinguished from every
    concrete width).  O(k) in the run count: this is the "compressed
    rows are cheap to key" dividend the service layer is built on.
    """
    digest = blake2b(digest_size=16)
    width = -1 if row.width is None else row.width
    runs = row.runs
    flat = [0] * (2 * len(runs) + 1)
    flat[0] = width
    i = 1
    for run in runs:
        flat[i] = run.start
        flat[i + 1] = run.length
        i += 2
    digest.update(struct.pack(f"<{len(flat)}q", *flat))
    return digest.digest()


def _verbatim(row_a: RLERow, row_b: RLERow) -> _Inputs:
    return (
        tuple((r.start, r.length) for r in row_a.runs),
        row_a.width,
        tuple((r.start, r.length) for r in row_b.runs),
        row_b.width,
    )


@dataclass
class _CacheEntry:
    inputs: _Inputs
    result: XorRunResult
    nbytes: int


def _entry_nbytes(inputs: _Inputs, result: XorRunResult) -> int:
    runs = len(inputs[0]) + len(inputs[2]) + result.result.run_count
    return _ENTRY_OVERHEAD + _RUN_BYTES * runs


class DiffCache:
    """A byte-budgeted, content-addressed LRU of row-diff results.

    Parameters
    ----------
    max_bytes:
        Eviction budget for the *estimated* total entry footprint.
        Inserting past it evicts least-recently-used entries; a single
        entry larger than the whole budget is simply not stored (and
        counted as an eviction).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; hit /
        miss / eviction / collision counters and the byte/entry gauges
        mirror into it under the ``repro_cache_*`` families, labelled
        with this cache's ``name``.
    fingerprint:
        Row digest function (default :func:`row_fingerprint`).  The
        tests inject deliberately colliding functions here; because
        entries verify verbatim inputs on every hit, a weak fingerprint
        only costs hit rate, never correctness.
    name:
        The ``cache`` label value used in the metric families.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: "Optional[MetricsRegistry]" = None,
        fingerprint: Optional[Callable[[RLERow], bytes]] = None,
        name: str = "row-diff",
    ) -> None:
        if max_bytes < 1:
            raise ServiceError(f"cache max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.name = name
        self._fingerprint = fingerprint if fingerprint is not None else row_fingerprint
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _CacheEntry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0
        self._metrics = metrics
        if metrics is not None:
            labels = ("cache",)
            self._m_hits = metrics.counter(
                "repro_cache_hits_total", "row-diff cache hits", labels
            ).labels(cache=name)
            self._m_misses = metrics.counter(
                "repro_cache_misses_total", "row-diff cache misses", labels
            ).labels(cache=name)
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total",
                "row-diff cache entries evicted under the byte budget",
                labels,
            ).labels(cache=name)
            self._m_collisions = metrics.counter(
                "repro_cache_collisions_total",
                "fingerprint collisions detected by verbatim-input verification",
                labels,
            ).labels(cache=name)
            self._m_bytes = metrics.gauge(
                "repro_cache_bytes", "estimated cached bytes", labels
            ).labels(cache=name)
            self._m_entries = metrics.gauge(
                "repro_cache_entries", "live cache entries", labels
            ).labels(cache=name)

    # ------------------------------------------------------------------ #
    # Keys                                                               #
    # ------------------------------------------------------------------ #
    def key_for(self, row_a: RLERow, row_b: RLERow, options: DiffOptions) -> CacheKey:
        """The content-addressed key of one request — compute it once
        and pass it to :meth:`get` / :meth:`put` to avoid re-hashing."""
        return (
            self._fingerprint(row_a),
            self._fingerprint(row_b),
            options.cache_key(),
        )

    # ------------------------------------------------------------------ #
    # Lookup / store                                                     #
    # ------------------------------------------------------------------ #
    def get(
        self, key: CacheKey, row_a: RLERow, row_b: RLERow
    ) -> Optional[XorRunResult]:
        """The cached result for ``key``, or ``None``.

        The rows are required so the stored verbatim inputs can be
        compared — a fingerprint collision is counted and reported as a
        miss, never served.
        """
        inputs = _verbatim(row_a, row_b)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if self._metrics is not None:
                    self._m_misses.inc()
                return None
            if entry.inputs != inputs:
                self.collisions += 1
                self.misses += 1
                if self._metrics is not None:
                    self._m_collisions.inc()
                    self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if self._metrics is not None:
                self._m_hits.inc()
            return entry.result

    def lookup(
        self, row_a: RLERow, row_b: RLERow, options: DiffOptions
    ) -> Optional[XorRunResult]:
        """Convenience: :meth:`key_for` + :meth:`get` in one call."""
        return self.get(self.key_for(row_a, row_b, options), row_a, row_b)

    def put(
        self, key: CacheKey, row_a: RLERow, row_b: RLERow, result: XorRunResult
    ) -> None:
        """Store ``result`` under ``key``, evicting LRU entries past the
        byte budget.  Idempotent: re-storing an existing key refreshes
        its recency and replaces the entry."""
        inputs = _verbatim(row_a, row_b)
        nbytes = _entry_nbytes(inputs, result)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if nbytes > self.max_bytes:
                # would evict the whole cache and still not fit
                self.evictions += 1
                if self._metrics is not None:
                    self._m_evictions.inc()
                self._sync_gauges()
                return
            self._entries[key] = _CacheEntry(inputs, result, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                if self._metrics is not None:
                    self._m_evictions.inc()
            self._sync_gauges()

    def store(
        self, row_a: RLERow, row_b: RLERow, options: DiffOptions, result: XorRunResult
    ) -> None:
        """Convenience: :meth:`key_for` + :meth:`put` in one call."""
        self.put(self.key_for(row_a, row_b, options), row_a, row_b, result)

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Estimated footprint of all live entries."""
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` over the cache's lifetime
        (``0.0`` before the first lookup).

        Reads both counters under the lock — an unsynchronized read can
        pair a fresh ``hits`` with a stale ``misses`` (or vice versa)
        mid-lookup and report a rate above 1.0 or below its true value,
        which matters because the CLI's ``--min-hit-rate`` gate trusts
        this number.
        """
        with self._lock:
            seen = self.hits + self.misses
            return self.hits / seen if seen else 0.0

    def info(self) -> Dict[str, float]:
        """Counters and budget as one plain dict (for logs and the CLI)."""
        with self._lock:
            # hit_rate recomputed inline: the property takes the same
            # non-reentrant lock.
            seen = self.hits + self.misses
            return {
                "entries": float(len(self._entries)),
                "bytes": float(self._bytes),
                "max_bytes": float(self.max_bytes),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "collisions": float(self.collisions),
                "hit_rate": self.hits / seen if seen else 0.0,
            }

    def invalidate(self, key: CacheKey) -> bool:
        """Drop the entry stored under ``key``, if any.

        Returns whether an entry was removed.  Used by the resilience
        layer to self-heal: a cached result that fails structural
        validation (see :mod:`repro.service.resilience`) is invalidated
        and recomputed instead of being served again.  Counted as an
        eviction — the entry left under pressure, just not *byte*
        pressure.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self.evictions += 1
            if self._metrics is not None:
                self._m_evictions.inc()
            self._sync_gauges()
            return True

    def clear(self) -> None:
        """Drop every entry (counters are lifetime totals and remain)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()

    def _sync_gauges(self) -> None:
        # caller holds the lock
        if self._metrics is not None:
            self._m_bytes.set(float(self._bytes))
            self._m_entries.set(float(len(self._entries)))
