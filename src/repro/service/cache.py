"""Content-addressed row-diff caching.

The paper's whole premise is that compressed rows are *cheap to key and
compare*: a row is a short tuple list, so hashing it costs O(k) — tiny
next to even one systolic run — and identical rows are everywhere in
real workloads (static backgrounds between surveillance frames, golden
reference rows in PCB inspection, repeated scan lines in documents).
:class:`DiffCache` exploits that redundancy: results are keyed by
``(fingerprint(row_a), fingerprint(row_b), options)`` so *any* caller
presenting the same content gets the stored
:class:`~repro.core.machine.XorRunResult` back, byte-identical to a
fresh computation (asserted by the service invariant tests).

Correctness before speed: fingerprints are 128-bit BLAKE2b digests, but
the cache never *trusts* them — every entry stores the verbatim input
run pairs and a hit is only served after an exact comparison.  A
fingerprint collision therefore degrades to a counted miss
(``repro_cache_collisions_total``), never a wrong answer; the collision
tests inject a deliberately truncated fingerprint function to exercise
exactly that path.

Eviction is byte-budgeted LRU: every entry's footprint is estimated
from its run counts, and inserts evict least-recently-used entries
until the configured ``max_bytes`` is respected again.  Hit/miss/
eviction/collision counts mirror into an optional
:class:`~repro.obs.metrics.MetricsRegistry` under the ``repro_cache_*``
families (see ``docs/OBSERVABILITY.md``).

Since PR 10 the cache is optionally *two-tier*: give it a
:class:`~repro.service.store.RowStore` and it becomes read-through /
write-behind over disk.  A RAM miss probes the store (a valid disk
entry is promoted back into RAM and served as a hit), entries evicted
under the RAM byte budget are demoted to disk instead of discarded, and
:meth:`DiffCache.flush` demotes everything still resident — the service
calls it on close so a restarted process warms up from where the last
one left off.  The disk tier has its own corruption story (checksums,
quarantine — see :mod:`repro.service.store`); this class only ever sees
entries that already validated.

All operations are thread-safe — the batcher's worker thread and any
number of submitting threads share one cache.  Disk probes and demotion
writes happen *outside* the RAM lock, so slow IO never blocks
concurrent RAM hits.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import DiffOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.service.store import RowStore

__all__ = ["row_fingerprint", "DiffCache", "CacheKey"]

#: Default cache budget: 32 MiB of estimated entry footprint.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: A cache key: the two content fingerprints plus the semantic options
#: key (:meth:`repro.core.options.DiffOptions.cache_key`).
CacheKey = Tuple[bytes, bytes, Tuple[str, Optional[int], bool, bool]]

#: Verbatim inputs stored for collision verification: the two rows'
#: run pairs and widths, as builtin tuples.
_Inputs = Tuple[Tuple[Tuple[int, int], ...], Optional[int], Tuple[Tuple[int, int], ...], Optional[int]]

#: Fixed per-entry overhead estimate (key, dict slot, dataclass, result
#: object shells) in bytes.
_ENTRY_OVERHEAD = 512

#: Estimated bytes per stored run: one (start, length) int pair in the
#: verbatim inputs or the result row, plus tuple/Run object overhead.
_RUN_BYTES = 96


def row_fingerprint(row: RLERow) -> bytes:
    """A 128-bit content digest of one RLE row.

    Covers the width and every ``(start, length)`` pair, so two rows
    fingerprint equal iff they are structurally identical (same runs,
    same declared width — ``None`` widths are distinguished from every
    concrete width).  O(k) in the run count: this is the "compressed
    rows are cheap to key" dividend the service layer is built on.
    """
    digest = blake2b(digest_size=16)
    width = -1 if row.width is None else row.width
    runs = row.runs
    flat = [0] * (2 * len(runs) + 1)
    flat[0] = width
    i = 1
    for run in runs:
        flat[i] = run.start
        flat[i + 1] = run.length
        i += 2
    digest.update(struct.pack(f"<{len(flat)}q", *flat))
    return digest.digest()


def _verbatim(row_a: RLERow, row_b: RLERow) -> _Inputs:
    return (
        tuple((r.start, r.length) for r in row_a.runs),
        row_a.width,
        tuple((r.start, r.length) for r in row_b.runs),
        row_b.width,
    )


@dataclass
class _CacheEntry:
    inputs: _Inputs
    result: XorRunResult
    nbytes: int


def _entry_nbytes(inputs: _Inputs, result: XorRunResult) -> int:
    runs = len(inputs[0]) + len(inputs[2]) + result.result.run_count
    return _ENTRY_OVERHEAD + _RUN_BYTES * runs


class DiffCache:
    """A byte-budgeted, content-addressed LRU of row-diff results.

    Parameters
    ----------
    max_bytes:
        Eviction budget for the *estimated* total entry footprint.
        Inserting past it evicts least-recently-used entries; a single
        entry larger than the whole budget is simply not stored (and
        counted as an eviction).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; hit /
        miss / eviction / collision counters and the byte/entry gauges
        mirror into it under the ``repro_cache_*`` families, labelled
        with this cache's ``name``.
    fingerprint:
        Row digest function (default :func:`row_fingerprint`).  The
        tests inject deliberately colliding functions here; because
        entries verify verbatim inputs on every hit, a weak fingerprint
        only costs hit rate, never correctness.
    name:
        The ``cache`` label value used in the metric families.
    store:
        Optional :class:`~repro.service.store.RowStore` disk tier.
        When given, RAM misses probe it (read-through with promotion),
        RAM evictions demote into it (write-behind), and
        :meth:`invalidate` reaches through so a self-healed entry
        cannot be re-promoted.  The store is *used*, not owned — the
        caller (normally :class:`~repro.service.service.DiffService`)
        decides when to :meth:`flush` and close it.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: "Optional[MetricsRegistry]" = None,
        fingerprint: Optional[Callable[[RLERow], bytes]] = None,
        name: str = "row-diff",
        store: "Optional[RowStore]" = None,
    ) -> None:
        if max_bytes < 1:
            raise ServiceError(f"cache max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self.name = name
        self._store = store
        self._fingerprint = fingerprint if fingerprint is not None else row_fingerprint
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _CacheEntry]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0
        self._metrics = metrics
        if metrics is not None:
            labels = ("cache",)
            self._m_hits = metrics.counter(
                "repro_cache_hits_total", "row-diff cache hits", labels
            ).labels(cache=name)
            self._m_misses = metrics.counter(
                "repro_cache_misses_total", "row-diff cache misses", labels
            ).labels(cache=name)
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total",
                "row-diff cache entries evicted under the byte budget",
                labels,
            ).labels(cache=name)
            self._m_collisions = metrics.counter(
                "repro_cache_collisions_total",
                "fingerprint collisions detected by verbatim-input verification",
                labels,
            ).labels(cache=name)
            self._m_bytes = metrics.gauge(
                "repro_cache_bytes", "estimated cached bytes", labels
            ).labels(cache=name)
            self._m_entries = metrics.gauge(
                "repro_cache_entries", "live cache entries", labels
            ).labels(cache=name)

    # ------------------------------------------------------------------ #
    # Keys                                                               #
    # ------------------------------------------------------------------ #
    def key_for(self, row_a: RLERow, row_b: RLERow, options: DiffOptions) -> CacheKey:
        """The content-addressed key of one request — compute it once
        and pass it to :meth:`get` / :meth:`put` to avoid re-hashing."""
        return (
            self._fingerprint(row_a),
            self._fingerprint(row_b),
            options.cache_key(),
        )

    # ------------------------------------------------------------------ #
    # Lookup / store                                                     #
    # ------------------------------------------------------------------ #
    def get(
        self, key: CacheKey, row_a: RLERow, row_b: RLERow
    ) -> Optional[XorRunResult]:
        """The cached result for ``key``, or ``None``.

        The rows are required so the stored verbatim inputs can be
        compared — a fingerprint collision is counted and reported as a
        miss, never served.
        """
        inputs = _verbatim(row_a, row_b)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.inputs != inputs:
                    self.collisions += 1
                    self.misses += 1
                    if self._metrics is not None:
                        self._m_collisions.inc()
                        self._m_misses.inc()
                    return None
                self._entries.move_to_end(key)
                self.hits += 1
                if self._metrics is not None:
                    self._m_hits.inc()
                return entry.result
            if self._store is None:
                self.misses += 1
                if self._metrics is not None:
                    self._m_misses.inc()
                return None
        # RAM miss with a disk tier: probe outside the lock (slow IO
        # must not serialize concurrent RAM hits).  The store validates
        # checksum, key and verbatim inputs itself — anything it
        # returns is promotable as-is.
        promoted = self._store.get(key, inputs)
        if promoted is None:
            with self._lock:
                self.misses += 1
                if self._metrics is not None:
                    self._m_misses.inc()
            return None
        self.put(key, row_a, row_b, promoted)
        with self._lock:
            self.hits += 1
            if self._metrics is not None:
                self._m_hits.inc()
        return promoted

    def lookup(
        self, row_a: RLERow, row_b: RLERow, options: DiffOptions
    ) -> Optional[XorRunResult]:
        """Convenience: :meth:`key_for` + :meth:`get` in one call."""
        return self.get(self.key_for(row_a, row_b, options), row_a, row_b)

    def put(
        self, key: CacheKey, row_a: RLERow, row_b: RLERow, result: XorRunResult
    ) -> None:
        """Store ``result`` under ``key``, evicting LRU entries past the
        byte budget.  Idempotent: re-storing an existing key refreshes
        its recency and replaces the entry.

        With a disk tier attached, entries leaving RAM under byte
        pressure — including an entry too large to ever fit — are
        demoted to the store (write-behind) after the lock is released,
        so an eviction costs disk IO but never discards work."""
        inputs = _verbatim(row_a, row_b)
        nbytes = _entry_nbytes(inputs, result)
        demoted: "List[Tuple[CacheKey, _Inputs, XorRunResult]]" = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            if nbytes > self.max_bytes:
                # would evict the whole cache and still not fit
                self.evictions += 1
                if self._metrics is not None:
                    self._m_evictions.inc()
                demoted.append((key, inputs, result))
                self._sync_gauges()
            else:
                self._entries[key] = _CacheEntry(inputs, result, nbytes)
                self._bytes += nbytes
                while self._bytes > self.max_bytes:
                    evicted_key, evicted = self._entries.popitem(last=False)
                    self._bytes -= evicted.nbytes
                    self.evictions += 1
                    if self._metrics is not None:
                        self._m_evictions.inc()
                    demoted.append((evicted_key, evicted.inputs, evicted.result))
                self._sync_gauges()
        if self._store is not None:
            for d_key, d_inputs, d_result in demoted:
                self._store.put(d_key, d_inputs, d_result)

    def store(
        self, row_a: RLERow, row_b: RLERow, options: DiffOptions, result: XorRunResult
    ) -> None:
        """Convenience: :meth:`key_for` + :meth:`put` in one call."""
        self.put(self.key_for(row_a, row_b, options), row_a, row_b, result)

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Estimated footprint of all live entries."""
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` over the cache's lifetime
        (``0.0`` before the first lookup).

        Reads both counters under the lock — an unsynchronized read can
        pair a fresh ``hits`` with a stale ``misses`` (or vice versa)
        mid-lookup and report a rate above 1.0 or below its true value,
        which matters because the CLI's ``--min-hit-rate`` gate trusts
        this number.
        """
        with self._lock:
            seen = self.hits + self.misses
            return self.hits / seen if seen else 0.0

    def info(self) -> Dict[str, float]:
        """Counters and budget as one plain dict (for logs and the CLI).
        With a disk tier attached its ``disk_*`` counters are merged in
        (see :meth:`RowStore.info <repro.service.store.RowStore.info>`)."""
        with self._lock:
            # hit_rate recomputed inline: the property takes the same
            # non-reentrant lock.
            seen = self.hits + self.misses
            out = {
                "entries": float(len(self._entries)),
                "bytes": float(self._bytes),
                "max_bytes": float(self.max_bytes),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "collisions": float(self.collisions),
                "hit_rate": self.hits / seen if seen else 0.0,
            }
        if self._store is not None:
            out.update(self._store.info())
        return out

    def invalidate(self, key: CacheKey) -> bool:
        """Drop the entry stored under ``key``, if any.

        Returns whether an entry was removed.  Used by the resilience
        layer to self-heal: a cached result that fails structural
        validation (see :mod:`repro.service.resilience`) is invalidated
        and recomputed instead of being served again.  Counted as an
        eviction — the entry left under pressure, just not *byte*
        pressure.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            removed = False
            if entry is not None:
                removed = True
                self._bytes -= entry.nbytes
                self.evictions += 1
                if self._metrics is not None:
                    self._m_evictions.inc()
                self._sync_gauges()
        # Reach through to the disk tier outside the lock: a corrupt
        # result must not be re-promoted on the next miss (the
        # resilience suite proves heal-once semantics through both
        # tiers).
        if self._store is not None:
            removed = self._store.invalidate(key) or removed
        return removed

    def clear(self) -> None:
        """Drop every RAM entry (counters are lifetime totals and
        remain).  The disk tier is untouched — ``clear`` sheds memory,
        it does not forget; use :meth:`invalidate` to purge a key from
        both tiers."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()

    @property
    def row_store(self) -> "Optional[RowStore]":
        """The attached disk tier, if any (``store`` is already taken by
        the write-through convenience method)."""
        return self._store

    def flush(self) -> int:
        """Demote every RAM-resident entry to the disk tier.

        Returns how many entries the store accepted.  A no-op (``0``)
        without a store or with a read-only one.  Called by
        :meth:`DiffService.close <repro.service.service.DiffService.close>`
        so a clean shutdown persists the working set — that is what
        makes the next process's restart *warm*.  Entries are written
        in LRU→MRU order so the disk tier's own LRU ranks the hottest
        content as most recently used.
        """
        if self._store is None:
            return 0
        with self._lock:
            snapshot = [
                (key, entry.inputs, entry.result)
                for key, entry in self._entries.items()
            ]
        flushed = 0
        for key, inputs, result in snapshot:
            if self._store.put(key, inputs, result):
                flushed += 1
        return flushed

    def _sync_gauges(self) -> None:
        # caller holds the lock
        if self._metrics is not None:
            self._m_bytes.set(float(self._bytes))
            self._m_entries.set(float(len(self._entries)))
