"""Long-lived differencing service: cache + batcher behind one door.

The functional API (:func:`repro.core.api.row_diff`,
:func:`repro.core.pipeline.diff_images`) treats every call as new work.
This package is for the other deployment shape — a resident service fed
a stream of frames, where most content repeats:

- :mod:`repro.service.cache` — content-addressed LRU of row-diff
  results, keyed by BLAKE2b row fingerprints plus the semantic
  :meth:`~repro.core.options.DiffOptions.cache_key`, byte-budgeted,
  collision-safe (verbatim-input verification).
- :mod:`repro.service.batcher` — bounded request queue whose worker
  coalesces concurrent submissions into single
  :class:`~repro.core.batched.BatchedXorEngine` batches, with
  :class:`~repro.errors.ServiceOverloadError` backpressure.
- :mod:`repro.service.service` — the :class:`DiffService` facade tying
  the two together.

See ``docs/API.md`` for the service contract and
``docs/OBSERVABILITY.md`` for the ``repro_cache_*`` /
``repro_service_*`` metric families.
"""

from repro.service.batcher import RowDiffBatcher, compute_row_diffs
from repro.service.cache import DiffCache, row_fingerprint
from repro.service.service import DiffService

__all__ = [
    "DiffService",
    "DiffCache",
    "RowDiffBatcher",
    "compute_row_diffs",
    "row_fingerprint",
]
