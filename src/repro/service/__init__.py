"""Long-lived differencing service: cache + batcher behind one door.

The functional API (:func:`repro.core.api.row_diff`,
:func:`repro.core.pipeline.diff_images`) treats every call as new work.
This package is for the other deployment shape — a resident service fed
a stream of frames, where most content repeats:

- :mod:`repro.service.cache` — content-addressed LRU of row-diff
  results, keyed by BLAKE2b row fingerprints plus the semantic
  :meth:`~repro.core.options.DiffOptions.cache_key`, byte-budgeted,
  collision-safe (verbatim-input verification).
- :mod:`repro.service.batcher` — bounded request queue whose worker
  coalesces concurrent submissions into single
  :class:`~repro.core.batched.BatchedXorEngine` batches, with
  :class:`~repro.errors.ServiceOverloadError` backpressure.
- :mod:`repro.service.store` — the persistent tier under the LRU:
  :class:`RowStore`, a content-addressed directory of
  packbits-compressed, checksummed entry files with an append-only LRU
  index, single-writer locking and corruption quarantine; selected via
  ``DiffOptions(cache_dir=...)`` and survives process restarts.
- :mod:`repro.service.service` — the :class:`DiffService` facade tying
  the two together.
- :mod:`repro.service.resilience` — :class:`ResilientDiffService`:
  deadlines, retries with jittered backoff, an error-rate circuit
  breaker, and degraded cache-only / load-shedding modes, all
  configured by one frozen :class:`ResiliencePolicy`.
- :mod:`repro.service.chaos` — seeded fault injection for the serving
  path (:class:`ChaosEngine` / :class:`ChaosSchedule`); every
  resilience behaviour is proven against reproducible fault schedules.
- :mod:`repro.service.shard` — consistent-hash routing of row
  fingerprints (:class:`ShardRing`), the builtin-typed wire codecs, and
  the worker process loop.
- :mod:`repro.service.frontend` — the multi-process serving tier:
  :class:`ShardedDiffService` (N resilient workers behind the ring),
  the asyncio TCP :class:`ShardedServer` (+ :class:`ServerThread`)
  speaking the versioned line-JSON protocol
  (:data:`~repro.service.frontend.PROTOCOL_VERSION`), and the blocking
  :class:`ShardClient`.
- :mod:`repro.service.stream` — streaming frame-delta sessions:
  :class:`StreamingDiffService` keeps per-session
  :class:`~repro.rle.delta.DeltaSequence` chains against
  cache-resident key frames and rekeys adaptively by measured diff
  density (:class:`StreamPolicy`); exposed through the sharded tier as
  the ``stream_open`` / ``stream_frame`` / ``stream_close`` /
  ``stream_stats`` ops, routed by session id on the ring.

See ``docs/API.md`` for the service contract, ``docs/RESILIENCE.md``
for the failure policies and breaker state machine, ``docs/SERVING.md``
for the sharded tier (routing, worker protocol, op vocabulary, failure
semantics), and ``docs/OBSERVABILITY.md`` for the ``repro_cache_*`` /
``repro_service_*`` / ``repro_resilience_*`` / ``repro_stream_*``
metric families.
"""

from repro.service.batcher import RowDiffBatcher, compute_row_diffs
from repro.service.cache import DiffCache, row_fingerprint
from repro.service.chaos import ChaosEngine, ChaosSchedule
from repro.service.frontend import (
    PROTOCOL_VERSION,
    ServerThread,
    ShardClient,
    ShardedDiffService,
    ShardedServer,
)
from repro.service.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientDiffService,
    validate_result,
)
from repro.service.service import DiffService
from repro.service.shard import ShardRing
from repro.service.store import DEFAULT_DISK_BUDGET, RowStore
from repro.service.stream import (
    FrameDelta,
    StreamingDiffService,
    StreamPolicy,
    StreamSession,
)

__all__ = [
    "DiffService",
    "DiffCache",
    "RowStore",
    "DEFAULT_DISK_BUDGET",
    "RowDiffBatcher",
    "compute_row_diffs",
    "row_fingerprint",
    "ResilientDiffService",
    "ResiliencePolicy",
    "CircuitBreaker",
    "validate_result",
    "ChaosEngine",
    "ChaosSchedule",
    "ShardRing",
    "ShardedDiffService",
    "ShardedServer",
    "ServerThread",
    "ShardClient",
    "PROTOCOL_VERSION",
    "StreamPolicy",
    "StreamSession",
    "StreamingDiffService",
    "FrameDelta",
]
