"""Resilience for the serving path: deadlines, retries, a circuit
breaker, and degraded modes.

The paper's Theorem 1 guarantees bounded completion only for a
*fault-free* array; :class:`~repro.service.DiffService` inherited that
optimism — any engine exception, slow batch or corrupted result
propagated straight to the caller.  This module is the service-level
counterpart of the hardware story: :class:`ResilientDiffService` wraps
the cache + batcher stack with explicit failure policies, and
:mod:`repro.service.chaos` proves every one of them against seeded,
reproducible fault schedules.

The policy surface is one frozen dataclass, :class:`ResiliencePolicy`:

- **Deadlines** — per-request budgets.  Expiry raises
  :class:`~repro.errors.DeadlineExceededError` and *never* returns
  partial runs.
- **Retries** — transient engine failures retry up to ``max_retries``
  times with jittered exponential backoff, *inside* the compute hook,
  so the cache only ever stores results that survived.  Non-transient
  caller errors (:class:`~repro.errors.GeometryError`, ...) never
  retry.  Exhausted retries surface the last typed error, or wrap an
  untyped one in :class:`~repro.errors.RetryExhaustedError` — nothing
  untyped escapes the boundary.
- **Circuit breaker** — an error-rate breaker over a sliding window of
  request outcomes.  ``closed`` serves normally; past the failure
  threshold it ``open``\\ s; after ``breaker_reset_timeout`` seconds it
  admits ``half_open`` probes whose outcomes close or re-open it.
- **Degraded modes** — with the breaker open, requests are served
  *cache-only*: a hit is returned (counted as a degraded serve), a
  miss is shed with :class:`~repro.errors.ServiceOverloadError` instead
  of hammering a failing engine.
- **Result validation** — computed and cache-served results are checked
  structurally (:func:`validate_result`); a corrupted cache entry is
  invalidated and recomputed (self-healing), a corrupted engine result
  is retried.

Outcome accounting lands in the ``repro_resilience_*`` metric families
(see ``docs/OBSERVABILITY.md``).  Time and randomness are injectable
(``clock`` / ``sleep`` / ``rng``), so the chaos suites drive every
state machine transition deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import (
    CapacityError,
    CorruptResultError,
    DeadlineExceededError,
    EncodingError,
    GeometryError,
    ReproError,
    RetryExhaustedError,
    ServiceError,
    ServiceOverloadError,
    UnknownEngineError,
)
from repro.rle.image import RLEImage
from repro.rle.row import RLERow
from repro.core.machine import XorRunResult
from repro.core.options import DiffOptions, IMAGE_DEFAULTS, resolve_options
from repro.core.pipeline import ImageDiffResult
from repro.obs.log import StructuredLog
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram
from repro.service.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LATENCY,
    DEFAULT_MAX_PENDING,
    ComputeFn,
    compute_row_diffs,
)
from repro.service.cache import DEFAULT_CACHE_BYTES
from repro.service.service import DiffService

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_VALUES",
    "ResiliencePolicy",
    "CircuitBreaker",
    "validate_result",
    "ResilientDiffService",
]

#: Breaker state names (also the ``repro_resilience_breaker_state``
#: gauge's vocabulary, via :data:`BREAKER_STATE_VALUES`).
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"

#: Numeric encoding of breaker states for the state gauge and
#: ``stats()`` (0 = healthy, 2 = tripped).
BREAKER_STATE_VALUES: Dict[str, float] = {
    BREAKER_CLOSED: 0.0,
    BREAKER_HALF_OPEN: 1.0,
    BREAKER_OPEN: 2.0,
}

#: Caller/config mistakes — never retried, never counted against the
#: breaker (a malformed request says nothing about engine health).
_CALLER_ERRORS: Tuple[Type[ReproError], ...] = (
    GeometryError,
    EncodingError,
    CapacityError,
    UnknownEngineError,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every failure-handling knob of the resilient service, as one
    immutable, validated value (mirroring
    :class:`~repro.core.options.DiffOptions` for the semantic knobs).

    Thread it explicitly to :class:`ResilientDiffService`, or attach it
    to the options bundle via ``DiffOptions(resilience=...)`` — the
    explicit argument wins.
    """

    #: Per-request budget in seconds; ``None`` disables deadlines.
    deadline: Optional[float] = None
    #: Retries per engine batch after the first attempt (0 = fail fast).
    max_retries: int = 2
    #: First backoff delay, in seconds.
    backoff_base: float = 0.01
    #: Multiplier applied per further attempt.
    backoff_multiplier: float = 2.0
    #: Hard cap on a single backoff delay.
    backoff_max: float = 0.25
    #: Uniform jitter fraction added to each delay (0 = deterministic).
    jitter: float = 0.1
    #: Sliding window of request outcomes the breaker looks at;
    #: ``0`` disables the breaker entirely.
    breaker_window: int = 16
    #: Outcomes required in the window before the breaker may trip.
    breaker_min_requests: int = 8
    #: Failure rate (over the window) at which the breaker opens.
    breaker_failure_threshold: float = 0.5
    #: Seconds the breaker stays open before admitting probes.
    breaker_reset_timeout: float = 1.0
    #: Consecutive half-open probe successes required to close.
    breaker_half_open_probes: int = 1
    #: Structurally validate every computed / cache-served result.
    validate_results: bool = True
    #: Latency SLO per request, in seconds; a request finishing (or
    #: failing) later than this counts as an SLO breach in the
    #: ``repro_slo_breaches_total`` family and ``stats()``.  ``None``
    #: disables SLO accounting.
    slo_seconds: Optional[float] = 0.5

    def __post_init__(self) -> None:
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ServiceError(
                f"slo_seconds must be > 0 (or None to disable), "
                f"got {self.slo_seconds}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(
                f"deadline must be > 0 seconds (or None), got {self.deadline}"
            )
        if self.max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ServiceError(
                f"backoff delays must be >= 0, got base={self.backoff_base}, "
                f"max={self.backoff_max}"
            )
        if self.backoff_multiplier < 1.0:
            raise ServiceError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_window < 0:
            raise ServiceError(
                f"breaker_window must be >= 0 (0 disables), got {self.breaker_window}"
            )
        if self.breaker_window:
            if not 1 <= self.breaker_min_requests <= self.breaker_window:
                raise ServiceError(
                    f"breaker_min_requests must be in [1, breaker_window], "
                    f"got {self.breaker_min_requests} (window {self.breaker_window})"
                )
            if not 0.0 < self.breaker_failure_threshold <= 1.0:
                raise ServiceError(
                    f"breaker_failure_threshold must be in (0, 1], "
                    f"got {self.breaker_failure_threshold}"
                )
            if self.breaker_reset_timeout < 0:
                raise ServiceError(
                    f"breaker_reset_timeout must be >= 0, "
                    f"got {self.breaker_reset_timeout}"
                )
            if self.breaker_half_open_probes < 1:
                raise ServiceError(
                    f"breaker_half_open_probes must be >= 1, "
                    f"got {self.breaker_half_open_probes}"
                )

    def backoff_for(self, attempt: int) -> float:
        """The un-jittered delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ServiceError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )


class CircuitBreaker:
    """An error-rate circuit breaker over a sliding outcome window.

    State machine::

        closed --[rate >= threshold over full-enough window]--> open
        open   --[reset_timeout elapsed]--------------------> half_open
        half_open --[probe failure]-------------------------> open
        half_open --[half_open_probes successes]------------> closed

    ``allow()`` answers admission (and performs the timed
    ``open -> half_open`` transition); ``record_success`` /
    ``record_failure`` feed outcomes back.  All methods are
    thread-safe.  With ``policy.breaker_window == 0`` the breaker is
    inert: always closed, never trips.
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._window: List[bool] = []  # True = failure; newest last
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self.transitions: List[Tuple[str, str]] = []

    @property
    def enabled(self) -> bool:
        return self.policy.breaker_window > 0

    @property
    def state(self) -> str:
        """Current state (performs the timed half-open transition)."""
        with self._lock:
            self._tick()
            return self._state

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            return sum(self._window) / len(self._window)

    def allow(self) -> bool:
        """May a request go to the engine path right now?"""
        if not self.enabled:
            return True
        with self._lock:
            self._tick()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN:
                if self._probes_issued < self.policy.breaker_half_open_probes:
                    self._probes_issued += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._tick()
            if self._state == BREAKER_HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.policy.breaker_half_open_probes:
                    self._transition(BREAKER_CLOSED)
                    self._window.clear()
                return
            self._observe(False)

    def record_failure(self) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._tick()
            if self._state == BREAKER_HALF_OPEN:
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()
                return
            if self._state == BREAKER_OPEN:
                return
            self._observe(True)
            window, policy = self._window, self.policy
            if (
                len(window) >= policy.breaker_min_requests
                and sum(window) / len(window) >= policy.breaker_failure_threshold
            ):
                self._transition(BREAKER_OPEN)
                self._opened_at = self._clock()

    @property
    def transition_count(self) -> int:
        """Number of state transitions so far, read under the lock.

        ``transitions`` itself is appended to while the lock is held;
        external readers (e.g. :meth:`ResilientDiffService.stats`) go
        through this accessor so the length is never sampled mid-append.
        """
        with self._lock:
            return len(self.transitions)

    def trip(self) -> None:
        """Force the breaker open (tests, operational kill switch)."""
        with self._lock:
            if self._state != BREAKER_OPEN:
                self._transition(BREAKER_OPEN)
            self._opened_at = self._clock()

    def reset(self) -> None:
        """Force the breaker closed and clear the window."""
        with self._lock:
            if self._state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED)
            self._window.clear()

    # -- internals (caller holds the lock) ----------------------------- #
    def _observe(self, failed: bool) -> None:
        self._window.append(failed)
        excess = len(self._window) - self.policy.breaker_window
        if excess > 0:
            del self._window[:excess]

    def _tick(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.policy.breaker_reset_timeout
        ):
            self._transition(BREAKER_HALF_OPEN)

    def _transition(self, to_state: str) -> None:
        from_state = self._state
        self._state = to_state
        if to_state == BREAKER_HALF_OPEN:
            self._probes_issued = 0
            self._probe_successes = 0
        self.transitions.append((from_state, to_state))
        if self._on_transition is not None:
            self._on_transition(from_state, to_state)


def validate_result(
    options: DiffOptions,
    row_a: RLERow,
    row_b: RLERow,
    result: XorRunResult,
) -> None:
    """Structural validation of one served result against its inputs.

    Catches the corruption the chaos engine models — metadata rot in a
    computed result or a cache entry: mismatched ``k1``/``k2``,
    impossible iteration counts, bad ``n_cells``, or an output width
    inconsistent with the inputs.  O(1): safe on every request.  Raises
    :class:`~repro.errors.CorruptResultError` (transient — callers
    retry / invalidate).  A *plausible-but-wrong* result row cannot be
    caught without recomputing; that is the trace verifier's job, not a
    per-request check.
    """
    if result.k1 != row_a.run_count or result.k2 != row_b.run_count:
        raise CorruptResultError(
            f"result k1/k2 ({result.k1}/{result.k2}) do not match inputs "
            f"({row_a.run_count}/{row_b.run_count})"
        )
    if result.iterations < 0:
        raise CorruptResultError(
            f"negative iteration count {result.iterations}"
        )
    if result.n_cells < 1:
        raise CorruptResultError(f"impossible n_cells {result.n_cells}")
    if (
        row_a.width is not None
        and result.result.width is not None
        and result.result.width != row_a.width
    ):
        raise CorruptResultError(
            f"result width {result.result.width} does not match input "
            f"width {row_a.width}"
        )


class ResilientDiffService:
    """A :class:`~repro.service.DiffService` wrapped in the
    :class:`ResiliencePolicy` failure machinery.

    Same request surface as the inner service (``row_diff``,
    ``submit_row_diff``, ``diff_images``, ``stats``, ``close``, context
    manager) with the guarantees layered on top:

    - every engine batch runs through the retry/validation wrapper
      *before* its results can reach the cache;
    - every request passes breaker admission, falling back to
      cache-only serving / typed load shedding when the breaker is
      open;
    - per-request deadlines raise
      :class:`~repro.errors.DeadlineExceededError`, never partial runs;
    - everything that escapes is a :class:`~repro.errors.ReproError`.

    Parameters mirror :class:`~repro.service.DiffService`, plus:

    policy:
        The :class:`ResiliencePolicy`; falls back to
        ``options.resilience``, then to the defaults.
    compute:
        Innermost compute hook — pass a
        :class:`~repro.service.chaos.ChaosEngine` here to exercise the
        policies against injected faults.
    clock / sleep / rng:
        Injectable time and jitter sources, so tests drive deadlines,
        backoff and breaker timeouts deterministically.
    log:
        An optional :class:`~repro.obs.log.StructuredLog`; when given,
        the lifecycle events of every request (admitted / completed /
        shed, retries, breaker transitions, deadline expiries, cache
        self-heals) land there as ``repro.log/v1`` records.  Shard
        workers pass their per-process log so the events ship back to
        the front-end with replies.
    """

    def __init__(
        self,
        options: Union[DiffOptions, str, None] = None,
        policy: Optional[ResiliencePolicy] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_latency: float = DEFAULT_MAX_LATENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        compute: Optional[ComputeFn] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        log: Optional[StructuredLog] = None,
    ) -> None:
        opts = resolve_options(options, {}, IMAGE_DEFAULTS, "ResilientDiffService")
        if policy is None:
            policy = opts.resilience
        self.policy = policy if policy is not None else ResiliencePolicy()
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._base_compute: ComputeFn = (
            compute if compute is not None else compute_row_diffs
        )
        self._lock = threading.Lock()
        self.retries = 0
        self.deadline_expirations = 0
        self.degraded_serves = 0
        self.shed = 0
        self.healed = 0
        self.slo_breaches = 0
        self.log = log
        # Always-on latency distribution (independent of the optional
        # metrics registry) so stats() can answer latency_p50/p99 and
        # SLO burn even when no registry was threaded.
        self._latency_hist = Histogram(LATENCY_BUCKETS_S)

        metrics = opts.metrics
        self._m_retries: Any = None
        self._m_deadline: Any = None
        self._m_degraded: Any = None
        self._m_outcomes: Any = None
        self._m_transitions: Any = None
        self._m_state: Any = None
        self._m_latency: Any = None
        self._m_slo: Any = None
        if metrics is not None:
            self._m_retries = metrics.counter(
                "repro_resilience_retries_total",
                "engine batch retry attempts",
            ).labels()
            self._m_deadline = metrics.counter(
                "repro_resilience_deadline_expired_total",
                "requests that exceeded their deadline",
            ).labels()
            self._m_degraded = metrics.counter(
                "repro_resilience_degraded_total",
                "degraded-mode dispositions while the breaker was open",
                ("mode",),
            )
            self._m_outcomes = metrics.counter(
                "repro_resilience_requests_total",
                "resilient-service requests by outcome",
                ("outcome",),
            )
            self._m_transitions = metrics.counter(
                "repro_resilience_breaker_transitions_total",
                "circuit breaker state transitions",
                ("from_state", "to_state"),
            )
            self._m_state = metrics.gauge(
                "repro_resilience_breaker_state",
                "breaker state (0=closed, 1=half_open, 2=open)",
            ).labels()
            self._m_state.set(BREAKER_STATE_VALUES[BREAKER_CLOSED])
            self._m_latency = metrics.histogram(
                "repro_request_latency_seconds",
                "request latency by operation and tier",
                ("op", "tier"),
                buckets=LATENCY_BUCKETS_S,
            )
            self._m_slo = metrics.counter(
                "repro_slo_breaches_total",
                "requests slower than the policy's slo_seconds budget",
                ("op",),
            )

        self.breaker = CircuitBreaker(
            self.policy, clock=clock, on_transition=self._note_transition
        )
        self._service = DiffService(
            opts,
            cache_bytes=cache_bytes,
            max_batch=max_batch,
            max_latency=max_latency,
            max_pending=max_pending,
            compute=self._guarded_compute,
            # The wrapper logs the request lifecycle itself, so the
            # inner service's `log` stays unset — but the disk tier's
            # cache_warm/cache_quarantine events should still land.
            store_log=log,
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #
    @property
    def options(self) -> DiffOptions:
        return self._service.options

    @property
    def service(self) -> DiffService:
        """The wrapped inner service (cache and batcher live there)."""
        return self._service

    def stats(self) -> Dict[str, float]:
        """Inner cache/batcher stats plus the resilience counters."""
        info = self._service.stats()
        with self._lock:
            info["resilience_retries"] = float(self.retries)
            info["resilience_deadline_expirations"] = float(
                self.deadline_expirations
            )
            info["resilience_degraded_serves"] = float(self.degraded_serves)
            info["resilience_shed"] = float(self.shed)
            info["resilience_healed"] = float(self.healed)
            info["slo_breaches"] = float(self.slo_breaches)
        info["latency_p50"] = self._latency_hist.quantile(0.5)
        info["latency_p99"] = self._latency_hist.quantile(0.99)
        info["breaker_state"] = BREAKER_STATE_VALUES[self.breaker.state]
        info["breaker_failure_rate"] = self.breaker.failure_rate
        # transition_count reads len() under the breaker's own lock —
        # sampling the list bare here could race a mid-append resize.
        info["breaker_transitions"] = float(self.breaker.transition_count)
        return info

    # ------------------------------------------------------------------ #
    # Row requests                                                       #
    # ------------------------------------------------------------------ #
    def submit_row_diff(
        self, row_a: RLERow, row_b: RLERow
    ) -> "Future[XorRunResult]":
        """Asynchronous row diff through the resilient path.

        Breaker admission applies: with the breaker open, a cache hit
        comes back as an already-resolved future and a miss raises
        :class:`~repro.errors.ServiceOverloadError`.  Computed results
        are retried/validated inside the batch wrapper; deadline
        enforcement is the caller's (use
        ``future.result(timeout=...)`` or :meth:`row_diff`).
        """
        if not self.breaker.allow():
            result = self._degraded_row_lookup(row_a, row_b)
            future: "Future[XorRunResult]" = Future()
            future.set_result(result)
            return future
        return self._service.submit_row_diff(row_a, row_b)

    def row_diff(
        self,
        row_a: RLERow,
        row_b: RLERow,
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> XorRunResult:
        """Synchronous row diff under the full policy: breaker
        admission, per-request deadline (``deadline`` overrides
        ``policy.deadline``), retries and validation.  ``request_id``
        stamps the request's log events (see
        :class:`~repro.obs.context.RequestContext`).
        """
        with self._observe_request("row_diff", request_id, 1):
            return self._row_diff_inner(row_a, row_b, deadline)

    def _row_diff_inner(
        self,
        row_a: RLERow,
        row_b: RLERow,
        deadline: Optional[float],
    ) -> XorRunResult:
        budget = deadline if deadline is not None else self.policy.deadline
        start = self._clock()
        if not self.breaker.allow():
            return self._degraded_row_lookup(row_a, row_b)
        try:
            result = self._await(
                self._service.submit_row_diff(row_a, row_b), start, budget
            )
            if self.policy.validate_results:
                result = self._heal_row(row_a, row_b, result, start, budget)
        except _CALLER_ERRORS:
            raise
        except ServiceOverloadError:
            raise
        except DeadlineExceededError:
            self._count_deadline()
            self.breaker.record_failure()
            raise
        except ReproError:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise
        except Exception as exc:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise RetryExhaustedError(
                f"row diff failed with untyped {type(exc).__name__}: {exc}"
            ) from exc
        self._count_outcome("ok")
        self.breaker.record_success()
        return result

    # ------------------------------------------------------------------ #
    # Image requests                                                     #
    # ------------------------------------------------------------------ #
    def diff_images(
        self,
        image_a: RLEImage,
        image_b: RLEImage,
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> ImageDiffResult:
        """Whole-image diff under the full policy.

        The bulk path computes inline, so the deadline is enforced at
        batch boundaries (a running NumPy batch cannot be preempted):
        retries stop once the budget is gone, and a request whose total
        elapsed time exceeds it raises
        :class:`~repro.errors.DeadlineExceededError` rather than
        returning late results.
        """
        with self._observe_request("diff_images", request_id, image_a.height):
            return self._diff_images_inner(image_a, image_b, deadline)

    def _diff_images_inner(
        self,
        image_a: RLEImage,
        image_b: RLEImage,
        deadline: Optional[float],
    ) -> ImageDiffResult:
        budget = deadline if deadline is not None else self.policy.deadline
        start = self._clock()
        if not self.breaker.allow():
            return self._degraded_image_lookup(image_a, image_b)
        try:
            result = self._service.diff_images(image_a, image_b)
            if self.policy.validate_results:
                result = self._heal_image(image_a, image_b, result)
        except _CALLER_ERRORS:
            raise
        except ServiceOverloadError:
            raise
        except DeadlineExceededError:
            self._count_deadline()
            self.breaker.record_failure()
            raise
        except ReproError:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise
        except Exception as exc:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise RetryExhaustedError(
                f"image diff failed with untyped {type(exc).__name__}: {exc}"
            ) from exc
        if budget is not None and self._clock() - start > budget:
            self._count_deadline()
            self.breaker.record_failure()
            raise DeadlineExceededError(
                f"image diff completed after its {budget:g}s deadline"
            )
        self._count_outcome("ok")
        self.breaker.record_success()
        return result

    def diff_rows(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        deadline: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> List[XorRunResult]:
        """Bulk row-pair diff under the full policy.

        The request unit of the sharded tier
        (:mod:`repro.service.shard`): a worker serves each routed slice
        through this method, so backpressure, breaker admission,
        degraded cache-only serving and validation all apply per slice
        exactly as :meth:`diff_images` applies them per image.
        ``request_id`` stamps the slice's log events with the
        originating request's identity.
        """
        with self._observe_request("diff_rows", request_id, len(rows_a)):
            return self._diff_rows_inner(rows_a, rows_b, deadline)

    def _diff_rows_inner(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        deadline: Optional[float],
    ) -> List[XorRunResult]:
        budget = deadline if deadline is not None else self.policy.deadline
        start = self._clock()
        if not self.breaker.allow():
            return self._degraded_rows_lookup(rows_a, rows_b)
        try:
            results = self._service.diff_rows(rows_a, rows_b)
            if self.policy.validate_results:
                results = self._heal_rows(rows_a, rows_b, results)
        except _CALLER_ERRORS:
            raise
        except ServiceOverloadError:
            raise
        except DeadlineExceededError:
            self._count_deadline()
            self.breaker.record_failure()
            raise
        except ReproError:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise
        except Exception as exc:
            self._count_outcome("failed")
            self.breaker.record_failure()
            raise RetryExhaustedError(
                f"bulk row diff failed with untyped {type(exc).__name__}: {exc}"
            ) from exc
        if budget is not None and self._clock() - start > budget:
            self._count_deadline()
            self.breaker.record_failure()
            raise DeadlineExceededError(
                f"bulk row diff completed after its {budget:g}s deadline"
            )
        self._count_outcome("ok")
        self.breaker.record_success()
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = None) -> None:
        self._service.close(timeout=timeout)

    def __enter__(self) -> "ResilientDiffService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The guarded compute hook (runs inside the inner service, before    #
    # any result can reach the cache)                                    #
    # ------------------------------------------------------------------ #
    def _guarded_compute(
        self,
        options: DiffOptions,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
    ) -> List[XorRunResult]:
        policy = self.policy
        start = self._clock()
        attempt = 0
        while True:
            # >= not >: backoff delays are clamped to the remaining
            # budget, so elapsed time converges on exactly the deadline
            if (
                policy.deadline is not None
                and self._clock() - start >= policy.deadline
                and attempt > 0
            ):
                self._count_deadline()
                raise DeadlineExceededError(
                    f"engine batch abandoned after {policy.deadline:g}s "
                    f"({attempt} attempt(s) made)"
                )
            try:
                results = self._base_compute(options, rows_a, rows_b)
                if policy.validate_results:
                    # inlined fast path: one predicate per row, and only
                    # a failing row pays for the full (raising) check
                    for row_a, row_b, result in zip(rows_a, rows_b, results):
                        if (
                            result.k1 != row_a.run_count
                            or result.k2 != row_b.run_count
                            or result.iterations < 0
                            or result.n_cells < 1
                            or (
                                row_a.width is not None
                                and result.result.width is not None
                                and result.result.width != row_a.width
                            )
                        ):
                            validate_result(options, row_a, row_b, result)
                return results
            except _CALLER_ERRORS:
                raise
            except DeadlineExceededError:
                raise
            except Exception as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    if isinstance(exc, ReproError):
                        raise
                    raise RetryExhaustedError(
                        f"engine batch failed after {attempt} attempt(s) "
                        f"with untyped {type(exc).__name__}: {exc}"
                    ) from exc
                self._count_retry()
                self._backoff(attempt, start)

    def _backoff(self, attempt: int, start: float) -> None:
        policy = self.policy
        delay = policy.backoff_for(attempt)
        if policy.jitter:
            with self._lock:
                delay *= 1.0 + policy.jitter * self._rng.random()
        if policy.deadline is not None:
            remaining = policy.deadline - (self._clock() - start)
            delay = min(delay, max(0.0, remaining))
        if delay > 0:
            self._sleep(delay)

    # ------------------------------------------------------------------ #
    # Deadline wait + self-healing                                       #
    # ------------------------------------------------------------------ #
    def _await(
        self,
        future: "Future[XorRunResult]",
        start: float,
        budget: Optional[float],
    ) -> XorRunResult:
        if budget is None:
            return future.result()
        remaining = budget - (self._clock() - start)
        try:
            return future.result(timeout=max(0.0, remaining))
        except FuturesTimeout:
            raise DeadlineExceededError(
                f"row diff still pending after its {budget:g}s deadline"
            ) from None

    def _heal_row(
        self,
        row_a: RLERow,
        row_b: RLERow,
        result: XorRunResult,
        start: float,
        budget: Optional[float],
    ) -> XorRunResult:
        """Validate a served row result; a corrupt one (a rotted cache
        entry — computed results were already validated upstream) is
        invalidated and recomputed once."""
        if self._service.cache is None:
            # no cache, no rot: the result came straight out of the
            # validated compute chain — don't pay for a second pass
            return result
        try:
            validate_result(self.options, row_a, row_b, result)
            return result
        except CorruptResultError:
            cache = self._service.cache
            if cache is not None:
                cache.invalidate(cache.key_for(row_a, row_b, self.options))
            self._count_retry()
            self._count_healed()
            fresh = self._await(
                self._service.submit_row_diff(row_a, row_b), start, budget
            )
            validate_result(self.options, row_a, row_b, fresh)
            return fresh

    def _heal_image(
        self,
        image_a: RLEImage,
        image_b: RLEImage,
        result: ImageDiffResult,
    ) -> ImageDiffResult:
        """Validate every row of a served image; invalidate any corrupt
        cache entries and recompute the image once."""
        cache = self._service.cache
        if cache is None:
            # no cache, no rot: every row came straight out of the
            # validated compute chain — don't pay for a second pass
            return result
        corrupt = [
            (row_a, row_b)
            for row_a, row_b, row_result in zip(
                image_a, image_b, result.row_results
            )
            if not _is_valid(self.options, row_a, row_b, row_result)
        ]
        if not corrupt:
            return result
        for row_a, row_b in corrupt:
            cache.invalidate(cache.key_for(row_a, row_b, self.options))
        self._count_retry()
        self._count_healed()
        fresh = self._service.diff_images(image_a, image_b)
        for row_a, row_b, row_result in zip(
            image_a, image_b, fresh.row_results
        ):
            validate_result(self.options, row_a, row_b, row_result)
        return fresh

    def _heal_rows(
        self,
        rows_a: Sequence[RLERow],
        rows_b: Sequence[RLERow],
        results: List[XorRunResult],
    ) -> List[XorRunResult]:
        """Validate every served row result; invalidate any corrupt
        cache entries and recompute the batch once (the bulk analogue
        of :meth:`_heal_image`)."""
        cache = self._service.cache
        if cache is None:
            # no cache, no rot: every row came straight out of the
            # validated compute chain — don't pay for a second pass
            return results
        corrupt = [
            (row_a, row_b)
            for row_a, row_b, result in zip(rows_a, rows_b, results)
            if not _is_valid(self.options, row_a, row_b, result)
        ]
        if not corrupt:
            return results
        for row_a, row_b in corrupt:
            cache.invalidate(cache.key_for(row_a, row_b, self.options))
        self._count_retry()
        self._count_healed()
        fresh = self._service.diff_rows(rows_a, rows_b)
        for row_a, row_b, result in zip(rows_a, rows_b, fresh):
            validate_result(self.options, row_a, row_b, result)
        return fresh

    # ------------------------------------------------------------------ #
    # Degraded modes (breaker open / out of probes)                      #
    # ------------------------------------------------------------------ #
    def _degraded_row_lookup(self, row_a: RLERow, row_b: RLERow) -> XorRunResult:
        cache = self._service.cache
        if cache is not None:
            hit = cache.lookup(row_a, row_b, self.options)
            if hit is not None and _is_valid(self.options, row_a, row_b, hit):
                self._count_degraded("cache_only")
                return hit
        self._count_degraded("shed")
        raise ServiceOverloadError(
            "circuit breaker open: engine path disabled and the request "
            "missed the cache — shedding load, retry after "
            f"{self.policy.breaker_reset_timeout:g}s"
        )

    def _degraded_rows_lookup(
        self, rows_a: Sequence[RLERow], rows_b: Sequence[RLERow]
    ) -> List[XorRunResult]:
        if len(rows_a) != len(rows_b):
            raise GeometryError(
                f"row sequences differ in length: {len(rows_a)} vs {len(rows_b)}"
            )
        cache = self._service.cache
        served: List[XorRunResult] = []
        if cache is not None:
            for row_a, row_b in zip(rows_a, rows_b):
                hit = cache.lookup(row_a, row_b, self.options)
                if hit is None or not _is_valid(self.options, row_a, row_b, hit):
                    break
                served.append(hit)
        if cache is None or len(served) < len(rows_a):
            self._count_degraded("shed")
            raise ServiceOverloadError(
                "circuit breaker open: engine path disabled and the batch "
                "is not fully cached — shedding load, retry after "
                f"{self.policy.breaker_reset_timeout:g}s"
            )
        self._count_degraded("cache_only")
        return served

    def _degraded_image_lookup(
        self, image_a: RLEImage, image_b: RLEImage
    ) -> ImageDiffResult:
        if image_a.shape != image_b.shape:
            raise GeometryError(
                f"image shapes differ: {image_a.shape} vs {image_b.shape}"
            )
        cache = self._service.cache
        rows_a, rows_b = list(image_a), list(image_b)
        served: List[XorRunResult] = []
        if cache is not None:
            for row_a, row_b in zip(rows_a, rows_b):
                hit = cache.lookup(row_a, row_b, self.options)
                if hit is None or not _is_valid(self.options, row_a, row_b, hit):
                    break
                served.append(hit)
        if cache is None or len(served) < len(rows_a):
            self._count_degraded("shed")
            raise ServiceOverloadError(
                "circuit breaker open: engine path disabled and the image "
                "is not fully cached — shedding load, retry after "
                f"{self.policy.breaker_reset_timeout:g}s"
            )
        self._count_degraded("cache_only")
        return ImageDiffResult(
            image=RLEImage(
                (
                    r.canonical_result if self.options.canonical else r.result
                    for r in served
                ),
                width=image_a.width,
            ),
            row_results=served,
        )

    # ------------------------------------------------------------------ #
    # Per-request observation (latency, SLO, lifecycle log events)       #
    # ------------------------------------------------------------------ #
    @contextmanager
    def _observe_request(
        self, op: str, request_id: Optional[str], units: int
    ) -> Iterator[None]:
        """Wraps one request: admitted/terminal log events, the latency
        histogram, and SLO-breach accounting, on every exit path."""
        started = self._clock()
        if self.log is not None:
            self.log.log(
                "request_admitted",
                request_id=request_id,
                level="debug",
                op=op,
                units=units,
            )
        try:
            yield
        except BaseException as exc:
            self._finish_request(op, started, request_id, exc)
            raise
        else:
            self._finish_request(op, started, request_id, None)

    def _finish_request(
        self,
        op: str,
        started: float,
        request_id: Optional[str],
        exc: Optional[BaseException],
    ) -> None:
        elapsed = max(0.0, self._clock() - started)
        self._latency_hist.observe(elapsed)
        if self._m_latency is not None:
            self._m_latency.labels(op=op, tier="service").observe(elapsed)
        slo = self.policy.slo_seconds
        breached = slo is not None and elapsed > slo
        if breached:
            with self._lock:
                self.slo_breaches += 1
            if self._m_slo is not None:
                self._m_slo.labels(op=op).inc()
        if self.log is None:
            return
        if exc is None:
            self.log.log(
                "request_completed",
                request_id=request_id,
                level="debug",
                op=op,
                ok=True,
                seconds=elapsed,
                slo_breach=breached,
            )
        elif isinstance(exc, ServiceOverloadError):
            self.log.log(
                "request_shed",
                request_id=request_id,
                level="warning",
                op=op,
                seconds=elapsed,
            )
        elif isinstance(exc, DeadlineExceededError):
            self.log.log(
                "deadline_expired",
                request_id=request_id,
                level="warning",
                op=op,
                seconds=elapsed,
            )
        else:
            self.log.log(
                "request_completed",
                request_id=request_id,
                level="warning",
                op=op,
                ok=False,
                error=type(exc).__name__,
                seconds=elapsed,
                slo_breach=breached,
            )

    # ------------------------------------------------------------------ #
    # Accounting                                                         #
    # ------------------------------------------------------------------ #
    def _count_retry(self) -> None:
        with self._lock:
            self.retries += 1
            total = self.retries
        if self._m_retries is not None:
            self._m_retries.inc()
        if self.log is not None:
            self.log.log("retry", level="warning", total=total)

    def _count_healed(self) -> None:
        with self._lock:
            self.healed += 1
            total = self.healed
        if self.log is not None:
            self.log.log("cache_self_heal", level="warning", total=total)

    def _count_deadline(self) -> None:
        with self._lock:
            self.deadline_expirations += 1
        if self._m_deadline is not None:
            self._m_deadline.inc()
        self._count_outcome("deadline")

    def _count_degraded(self, mode: str) -> None:
        with self._lock:
            if mode == "cache_only":
                self.degraded_serves += 1
            else:
                self.shed += 1
        if self._m_degraded is not None:
            self._m_degraded.labels(mode=mode).inc()
        self._count_outcome("degraded" if mode == "cache_only" else "shed")

    def _count_outcome(self, outcome: str) -> None:
        if self._m_outcomes is not None:
            self._m_outcomes.labels(outcome=outcome).inc()

    def _note_transition(self, from_state: str, to_state: str) -> None:
        if self._m_transitions is not None:
            self._m_transitions.labels(
                from_state=from_state, to_state=to_state
            ).inc()
        if self._m_state is not None:
            self._m_state.set(BREAKER_STATE_VALUES[to_state])
        if self.log is not None:
            self.log.log(
                "breaker_transition",
                level="warning",
                from_state=from_state,
                to_state=to_state,
            )


def _is_valid(
    options: DiffOptions,
    row_a: RLERow,
    row_b: RLERow,
    result: XorRunResult,
) -> bool:
    try:
        validate_result(options, row_a, row_b, result)
        return True
    except CorruptResultError:
        return False
