"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np
import numpy.typing as npt

#: A run expressed the way the paper writes them: ``(start, length)``.
RunTuple = Tuple[int, int]

#: Anything accepted where a list of runs is expected.
RunsLike = Sequence[RunTuple]

#: A 1-D boolean/0-1 pixel row.
BitArray = npt.NDArray[np.bool_]

#: A 2-D boolean/0-1 pixel image.
BitImage = npt.NDArray[np.bool_]

#: Seed material accepted by workload generators.
SeedLike = Union[int, np.random.Generator, None]
