"""Motion-detection workload — moving silhouettes over a static scene.

Motion detection "for safety and security" is another application from
the paper's introduction (intruder silhouettes, ref. [4]).  Consecutive
frames of a surveillance sequence differ only where something moved, so
frame-to-frame XOR in RLE is exactly the highly-similar regime the
systolic algorithm wins in.  This module synthesizes such sequences:
a static background of clutter plus one or more sprites translating
across the frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.image import RLEImage
from repro.workloads.spec import as_generator

__all__ = ["Sprite", "generate_background", "render_frame", "generate_sequence"]

SpriteShape = Literal["rect", "disc", "bar"]


@dataclass(frozen=True)
class Sprite:
    """One moving object.

    Attributes
    ----------
    shape, size:
        Silhouette geometry (size = half-extent in pixels).
    position:
        Center ``(y, x)`` at frame 0 (floats; rounded at raster time).
    velocity:
        Per-frame displacement ``(dy, dx)``.
    """

    shape: SpriteShape
    size: int
    position: Tuple[float, float]
    velocity: Tuple[float, float]

    def at(self, frame: int) -> Tuple[float, float]:
        return (
            self.position[0] + self.velocity[0] * frame,
            self.position[1] + self.velocity[1] * frame,
        )


def generate_background(
    height: int, width: int, clutter: int = 12, seed: SeedLike = None
) -> np.ndarray:
    """A static scene: random axis-aligned clutter rectangles."""
    rng = as_generator(seed)
    bg = np.zeros((height, width), dtype=bool)
    for _ in range(clutter):
        h = int(rng.integers(2, max(3, height // 8)))
        w = int(rng.integers(2, max(3, width // 8)))
        y = int(rng.integers(0, max(1, height - h)))
        x = int(rng.integers(0, max(1, width - w)))
        bg[y : y + h, x : x + w] = True
    return bg


def _paint_sprite(canvas: np.ndarray, sprite: Sprite, frame: int) -> None:
    h, w = canvas.shape
    cy, cx = sprite.at(frame)
    cy, cx = int(round(cy)), int(round(cx))
    s = sprite.size
    if sprite.shape == "rect":
        y0, y1 = max(0, cy - s), min(h, cy + s + 1)
        x0, x1 = max(0, cx - s), min(w, cx + s + 1)
        canvas[y0:y1, x0:x1] = True
    elif sprite.shape == "bar":
        y0, y1 = max(0, cy - 2 * s), min(h, cy + 2 * s + 1)
        x0, x1 = max(0, cx - max(1, s // 2)), min(w, cx + max(1, s // 2) + 1)
        canvas[y0:y1, x0:x1] = True
    elif sprite.shape == "disc":
        yy, xx = np.ogrid[:h, :w]
        canvas[(yy - cy) ** 2 + (xx - cx) ** 2 <= s * s] = True
    else:  # pragma: no cover - Literal guards this
        raise WorkloadError(f"unknown sprite shape {sprite.shape!r}")


def render_frame(
    background: np.ndarray, sprites: Sequence[Sprite], frame: int
) -> RLEImage:
    """Rasterize one frame: background plus every sprite at time ``frame``."""
    canvas = background.copy()
    for sprite in sprites:
        _paint_sprite(canvas, sprite, frame)
    return RLEImage.from_array(canvas)


def generate_sequence(
    height: int = 128,
    width: int = 128,
    n_frames: int = 8,
    sprites: Sequence[Sprite] | None = None,
    clutter: int = 12,
    seed: SeedLike = None,
) -> List[RLEImage]:
    """A full synthetic surveillance clip.

    When ``sprites`` is omitted, one rectangle and one disc with random
    positions/velocities are used.
    """
    if n_frames < 1:
        raise WorkloadError(f"need at least one frame, got {n_frames}")
    rng = as_generator(seed)
    background = generate_background(height, width, clutter=clutter, seed=rng)
    if sprites is None:
        sprites = [
            Sprite(
                shape="rect",
                size=int(rng.integers(3, 7)),
                position=(float(rng.integers(10, height - 10)), 10.0),
                velocity=(0.0, float(rng.uniform(1.5, 4.0))),
            ),
            Sprite(
                shape="disc",
                size=int(rng.integers(3, 6)),
                position=(10.0, float(rng.integers(10, width - 10))),
                velocity=(float(rng.uniform(1.0, 3.0)), 0.5),
            ),
        ]
    return [render_frame(background, sprites, t) for t in range(n_frames)]
