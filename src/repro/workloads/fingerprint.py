"""Synthetic fingerprint workload — oriented ridge patterns.

Fingerprint analysis is on the paper's application list.  Real
fingerprint databases are not shippable, so this generator synthesizes
the property that matters for the difference operation: binary **ridge
patterns** — smooth, oriented, roughly periodic stripes — and a second
*impression* of the same finger (small displacement, pressure-dependent
ridge thickness, sensor noise).  Two impressions of the same finger are
highly similar row-wise; impressions of different fingers are not, so
XOR pixel counts separate match from non-match.

Ridges follow the classic oriented-sinusoid model: a coarse random
orientation field is interpolated over the image and the ridge phase is
the coordinate projected along the local orientation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.image import RLEImage
from repro.workloads.spec import as_generator

__all__ = ["generate_fingerprint", "second_impression", "match_score", "generate_pair"]


def _orientation_field(
    height: int, width: int, cells: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth per-pixel ridge orientation via bilinear interpolation of a
    coarse random angle grid (angles in radians)."""
    coarse = rng.uniform(0.0, np.pi, size=(cells + 1, cells + 1))
    ys = np.linspace(0, cells, height)
    xs = np.linspace(0, cells, width)
    y0 = np.clip(ys.astype(int), 0, cells - 1)
    x0 = np.clip(xs.astype(int), 0, cells - 1)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    a = coarse[y0][:, x0]
    b = coarse[y0][:, x0 + 1]
    c = coarse[y0 + 1][:, x0]
    d = coarse[y0 + 1][:, x0 + 1]
    # interpolate sin/cos of the doubled angle to avoid wrap artefacts
    def lerp(grid):
        return (
            grid(a) * (1 - fy) * (1 - fx)
            + grid(b) * (1 - fy) * fx
            + grid(c) * fy * (1 - fx)
            + grid(d) * fy * fx
        )

    sin2 = lerp(lambda t: np.sin(2 * t))
    cos2 = lerp(lambda t: np.cos(2 * t))
    return 0.5 * np.arctan2(sin2, cos2)


def generate_fingerprint(
    height: int = 160,
    width: int = 128,
    ridge_period: float = 7.0,
    orientation_cells: int = 4,
    seed: SeedLike = None,
) -> RLEImage:
    """One synthetic fingerprint: oriented ridges inside an oval mask."""
    if height < 16 or width < 16:
        raise WorkloadError("fingerprint image must be at least 16x16")
    if ridge_period <= 1:
        raise WorkloadError(f"ridge_period must be > 1, got {ridge_period}")
    rng = as_generator(seed)
    theta = _orientation_field(height, width, orientation_cells, rng)
    yy, xx = np.mgrid[0:height, 0:width].astype(float)
    phase = rng.uniform(0, 2 * np.pi)
    # projection of the position onto the local ridge normal
    proj = xx * np.cos(theta) + yy * np.sin(theta)
    ridges = np.cos(2 * np.pi * proj / ridge_period + phase) > 0

    # oval finger mask
    cy, cx = (height - 1) / 2, (width - 1) / 2
    mask = ((yy - cy) / (0.48 * height)) ** 2 + ((xx - cx) / (0.44 * width)) ** 2 <= 1
    return RLEImage.from_array(ridges & mask)


def second_impression(
    fingerprint: RLEImage,
    displacement: Tuple[int, int] = (1, 1),
    pressure: int = 0,
    noise: float = 0.01,
    seed: SeedLike = None,
) -> RLEImage:
    """Another impression of the same finger.

    ``displacement`` translates the print (placement variation),
    ``pressure`` dilates (+1) or erodes (−1) the ridges (ink/pressure),
    ``noise`` flips isolated pixels (sensor noise).
    """
    from repro.rle.morphology import dilate_image, erode_image
    from repro.rle.ops2d import translate_image

    rng = as_generator(seed)
    out = translate_image(fingerprint, *displacement)
    if pressure > 0:
        out = dilate_image(out, 0, pressure)
    elif pressure < 0:
        out = erode_image(out, 0, -pressure)
    if noise > 0:
        arr = out.to_array()
        flips = rng.random(arr.shape) < noise
        out = RLEImage.from_array(arr ^ flips)
    return out


def match_score(a: RLEImage, b: RLEImage, search_radius: int = 2) -> float:
    """Similarity in [0, 1]: best-aligned XOR agreement over a small
    translation window — the compressed-domain matcher."""
    from repro.rle.ops2d import translate_image, xor_images

    if a.shape != b.shape:
        raise WorkloadError(f"impression shapes differ: {a.shape} vs {b.shape}")
    area = a.height * a.width
    best_diff = None
    for dy in range(-search_radius, search_radius + 1):
        for dx in range(-search_radius, search_radius + 1):
            moved = translate_image(b, dy, dx) if (dy or dx) else b
            diff = xor_images(a, moved).pixel_count
            if best_diff is None or diff < best_diff:
                best_diff = diff
    return 1.0 - best_diff / area


def generate_pair(
    same_finger: bool,
    height: int = 160,
    width: int = 128,
    seed: SeedLike = None,
) -> Tuple[RLEImage, RLEImage]:
    """A genuine or impostor impression pair for matcher evaluation."""
    rng = as_generator(seed)
    first = generate_fingerprint(height, width, seed=rng)
    if same_finger:
        second = second_impression(
            first,
            displacement=(int(rng.integers(-1, 2)), int(rng.integers(-1, 2))),
            pressure=int(rng.integers(-1, 2)),
            noise=0.01,
            seed=rng,
        )
    else:
        second = generate_fingerprint(height, width, seed=rng)
    return first, second
