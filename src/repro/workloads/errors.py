"""Error / degradation models beyond the paper's run-flip recipe.

The paper's evaluation flips contiguous runs of bits; real acquisition
noise also produces isolated specks and edge jitter.  These models let
the application examples and robustness tests exercise the algorithm on
error structure the paper did not sweep (while :func:`flip_error_runs`
remains the faithful Section 5 model).
"""

from __future__ import annotations

from typing import Tuple

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.ops import xor_rows
from repro.rle.row import RLERow
from repro.rle.run import Run
from repro.workloads.spec import ErrorSpec, as_generator

__all__ = ["flip_error_runs", "salt_pepper", "edge_jitter"]


def flip_error_runs(
    row: RLERow, spec: ErrorSpec, seed: SeedLike = None
) -> Tuple[RLERow, RLERow]:
    """The Section 5 model: XOR the row with a sampled error mask.

    Returns ``(degraded_row, mask)``.
    """
    from repro.workloads.random_rows import generate_error_mask

    if row.width is None:
        raise WorkloadError("row needs a width for error injection")
    mask = generate_error_mask(spec, row.width, seed)
    return xor_rows(row, mask), mask


def salt_pepper(
    row: RLERow, flip_probability: float, seed: SeedLike = None
) -> Tuple[RLERow, RLERow]:
    """Independent per-pixel flips — the worst case for RLE (isolated
    flips each add up to two runs).  Returns ``(degraded_row, mask)``."""
    if row.width is None:
        raise WorkloadError("row needs a width for error injection")
    rng = as_generator(seed)
    flips = rng.random(row.width) < flip_probability
    mask = RLERow.from_bits(flips)
    return xor_rows(row, mask), mask


def edge_jitter(
    row: RLERow, max_shift: int = 1, seed: SeedLike = None
) -> RLERow:
    """Perturb each run's endpoints by up to ``max_shift`` pixels.

    Models scanner edge noise: runs grow/shrink slightly but stay runs —
    the kind of difference PCB inspection must tolerate.  Runs that
    would collide with a neighbour (or vanish) are clamped.
    """
    if max_shift < 0:
        raise WorkloadError(f"max_shift must be >= 0, got {max_shift}")
    rng = as_generator(seed)
    width = row.width
    jittered = []
    prev_end = -2
    runs = list(row.canonical())
    for i, run in enumerate(runs):
        ds = int(rng.integers(-max_shift, max_shift + 1))
        de = int(rng.integers(-max_shift, max_shift + 1))
        start = max(run.start + ds, prev_end + 2, 0)
        end = run.end + de
        if width is not None:
            end = min(end, width - 1)
        if i + 1 < len(runs):
            end = min(end, runs[i + 1].start - 2 + max_shift)
        if end < start:
            continue  # the run jittered out of existence
        jittered.append(Run.from_endpoints(start, end))
        prev_end = end
    return RLERow(jittered, width=width)
