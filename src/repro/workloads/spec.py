"""Workload specifications and RNG plumbing.

Every generator takes an explicit seed (or :class:`numpy.random.Generator`)
so experiments are reproducible run-to-run and benches can fix their
inputs; :func:`as_generator` is the single coercion point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError

__all__ = ["as_generator", "BaseRowSpec", "ErrorSpec", "RowPairSpec"]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``None`` / int / Generator into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class BaseRowSpec:
    """Parameters of the paper's base-row generator.

    "The on pixels in the first image were chosen in runs of length 4 to
    20 ... The percentage of on pixels ... was varied by changing the
    average distance between the runs."

    Attributes
    ----------
    width:
        Row length in pixels (the paper sweeps 128–2048 and uses 10 000
        for Figure 5).
    run_length:
        Inclusive (min, max) of the uniform run-length distribution.
    density:
        Target foreground fraction; realized by choosing the mean gap as
        ``mean_run * (1 - density) / density``.
    """

    width: int
    run_length: Tuple[int, int] = (4, 20)
    density: float = 0.30

    def __post_init__(self) -> None:
        if self.width < 0:
            raise WorkloadError(f"width must be >= 0, got {self.width}")
        lo, hi = self.run_length
        if not (1 <= lo <= hi):
            raise WorkloadError(f"bad run_length range {self.run_length}")
        if not (0.0 < self.density < 1.0):
            raise WorkloadError(f"density must be in (0, 1), got {self.density}")

    @property
    def mean_run_length(self) -> float:
        lo, hi = self.run_length
        return (lo + hi) / 2.0

    @property
    def mean_gap(self) -> float:
        """Average background gap hitting the target density."""
        return self.mean_run_length * (1.0 - self.density) / self.density


@dataclass(frozen=True)
class ErrorSpec:
    """Parameters of the error (bit-flip) mask.

    "these changes are called errors and they were created in runs of
    length 2 to 6" — either a target *fraction* of error pixels
    (Figure 5's x-axis, Table 1's 3.5 % row) or an exact *count* of
    fixed-length error runs (Table 1's "6 runs of size 4" row).
    """

    run_length: Tuple[int, int] = (2, 6)
    #: Fraction of pixels to flip (mutually exclusive with ``n_runs``).
    fraction: Optional[float] = None
    #: Exact number of error runs (mutually exclusive with ``fraction``).
    n_runs: Optional[int] = None
    #: Fixed length for counted runs (``None`` = sample from run_length).
    fixed_length: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.fraction is None) == (self.n_runs is None):
            raise WorkloadError("specify exactly one of fraction / n_runs")
        if self.fraction is not None and not (0.0 <= self.fraction <= 1.0):
            raise WorkloadError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.n_runs is not None and self.n_runs < 0:
            raise WorkloadError(f"n_runs must be >= 0, got {self.n_runs}")
        lo, hi = self.run_length
        if not (1 <= lo <= hi):
            raise WorkloadError(f"bad run_length range {self.run_length}")
        if self.fixed_length is not None and self.fixed_length < 1:
            raise WorkloadError(f"fixed_length must be >= 1, got {self.fixed_length}")


@dataclass(frozen=True)
class RowPairSpec:
    """A full Section 5 test case: base row + error mask + seed."""

    base: BaseRowSpec
    errors: ErrorSpec
    seed: Optional[int] = None

    @classmethod
    def paper_figure5(
        cls, error_fraction: float, width: int = 10_000, seed: Optional[int] = None
    ) -> "RowPairSpec":
        """Figure 5's setting: 10 000 px, ~250 runs at 30 % density."""
        return cls(
            base=BaseRowSpec(width=width, run_length=(4, 20), density=0.30),
            errors=ErrorSpec(run_length=(2, 6), fraction=error_fraction),
            seed=seed,
        )

    @classmethod
    def paper_table1_percent(
        cls, width: int, seed: Optional[int] = None
    ) -> "RowPairSpec":
        """Table 1, first pairing: errors ≈ 3.5 % of the image."""
        return cls(
            base=BaseRowSpec(width=width, run_length=(4, 20), density=0.30),
            errors=ErrorSpec(run_length=(2, 6), fraction=0.035),
            seed=seed,
        )

    @classmethod
    def paper_table1_fixed(
        cls, width: int, seed: Optional[int] = None
    ) -> "RowPairSpec":
        """Table 1, second pairing: exactly 6 error runs of 4 pixels."""
        return cls(
            base=BaseRowSpec(width=width, run_length=(4, 20), density=0.30),
            errors=ErrorSpec(run_length=(2, 6), n_runs=6, fixed_length=4),
            seed=seed,
        )
