"""Synthetic workload generators.

:mod:`repro.workloads.random_rows` reimplements the paper's Section 5
methodology exactly (base runs 4–20 px, error runs 2–6 px, density and
error rate set via average gap spacing); the other modules supply the
application workloads the introduction motivates — PCB inspection,
character recognition, motion detection — so the examples and benches
exercise realistic data, not just noise.
"""

from repro.workloads.spec import (
    BaseRowSpec,
    ErrorSpec,
    RowPairSpec,
    as_generator,
)
from repro.workloads.random_rows import (
    generate_base_row,
    generate_error_mask,
    generate_row_pair,
)
from repro.workloads.errors import edge_jitter, flip_error_runs, salt_pepper

__all__ = [
    "BaseRowSpec",
    "ErrorSpec",
    "RowPairSpec",
    "as_generator",
    "generate_base_row",
    "generate_error_mask",
    "generate_row_pair",
    "flip_error_runs",
    "salt_pepper",
    "edge_jitter",
]
