"""Named canned workloads used by benches, examples and smoke tests.

Each entry is a zero-argument callable returning a pair of RLE rows (or
images) plus a short description — a stable registry so benchmarks and
documentation refer to workloads by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.rle.row import RLERow
from repro.workloads.spec import BaseRowSpec, ErrorSpec
from repro.workloads.random_rows import generate_row_pair

__all__ = ["RowWorkload", "ROW_WORKLOADS", "get_row_workload"]


@dataclass(frozen=True)
class RowWorkload:
    """A named, seeded row-pair workload."""

    name: str
    description: str
    make: Callable[[], Tuple[RLERow, RLERow, RLERow]]


def _pair(width: int, density: float, *, fraction=None, n_runs=None,
          fixed_length=None, seed: int) -> Callable:
    def make() -> Tuple[RLERow, RLERow, RLERow]:
        return generate_row_pair(
            BaseRowSpec(width=width, density=density),
            ErrorSpec(fraction=fraction, n_runs=n_runs, fixed_length=fixed_length),
            seed=seed,
        )

    return make


ROW_WORKLOADS: Dict[str, RowWorkload] = {
    w.name: w
    for w in [
        RowWorkload(
            "tiny-similar",
            "512 px, 2 error runs — near-identical rows",
            _pair(512, 0.30, n_runs=2, fixed_length=4, seed=101),
        ),
        RowWorkload(
            "paper-figure5-5pct",
            "10 000 px at 30 % density with 5 % error pixels (Figure 5 regime)",
            _pair(10_000, 0.30, fraction=0.05, seed=102),
        ),
        RowWorkload(
            "paper-table1-2048-fixed",
            "2048 px with exactly 6 error runs of 4 px (Table 1, second pairing)",
            _pair(2048, 0.30, n_runs=6, fixed_length=4, seed=103),
        ),
        RowWorkload(
            "paper-table1-2048-pct",
            "2048 px with 3.5 % error pixels (Table 1, first pairing)",
            _pair(2048, 0.30, fraction=0.035, seed=104),
        ),
        RowWorkload(
            "dense-dissimilar",
            "4096 px at 50 % density with 40 % error pixels — stress regime",
            _pair(4096, 0.50, fraction=0.40, seed=105),
        ),
    ]
}


def get_row_workload(name: str) -> RowWorkload:
    """Look up a canned workload; raises ``KeyError`` with the catalog."""
    try:
        return ROW_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ROW_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


# --------------------------------------------------------------------- #
# Image-pair workloads (application scenarios)                           #
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ImageWorkload:
    """A named, seeded image-pair workload: ``make()`` returns
    ``(reference, comparison)`` — the highly-similar pairs of the
    paper's application domains."""

    name: str
    description: str
    make: Callable[[], tuple]


def _pcb_pair():
    from repro.workloads.pcb import PCBLayout, generate_inspection_case

    reference, scanned, _ = generate_inspection_case(
        PCBLayout(height=192, width=192), n_defects=4, seed=301
    )
    return reference, scanned


def _motion_pair():
    from repro.workloads.motion import generate_sequence

    frames = generate_sequence(128, 128, n_frames=2, seed=302)
    return frames[0], frames[1]


def _map_pair():
    from repro.workloads.maps import generate_map, revise_map

    original, segments = generate_map(192, 192, seed=303)
    revised, _ = revise_map(192, 192, segments, seed=304)
    return original, revised


def _fingerprint_pair():
    from repro.inspection.reference import ReferenceComparator
    from repro.rle.ops2d import translate_image
    from repro.workloads.fingerprint import generate_pair

    first, second = generate_pair(same_finger=True, seed=305)
    # register the second impression (a matcher always aligns first;
    # unregistered periodic ridges are maximally dissimilar)
    dy, dx = ReferenceComparator(first, max_offset=2).align(second)
    return first, translate_image(second, dy, dx) if (dy or dx) else second


IMAGE_WORKLOADS: Dict[str, ImageWorkload] = {
    w.name: w
    for w in [
        ImageWorkload("pcb", "reference board vs defective scan", _pcb_pair),
        ImageWorkload("motion", "two consecutive surveillance frames", _motion_pair),
        ImageWorkload("map", "street map vs revision", _map_pair),
        ImageWorkload(
            "fingerprint", "two impressions of the same finger", _fingerprint_pair
        ),
    ]
}


def get_image_workload(name: str) -> ImageWorkload:
    """Look up a canned image workload; raises ``KeyError`` with catalog."""
    try:
        return IMAGE_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(IMAGE_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
