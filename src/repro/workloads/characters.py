"""Character-recognition workload — 5×7 bitmap glyphs.

Character recognition is among the applications the paper's introduction
lists.  This module carries a classic 5×7 dot-matrix font (a standard
public-domain pattern set), renders strings into binary images, and
produces degraded copies so template-matching-style diffs can be
benchmarked: a scanned glyph is compared against each template and the
XOR pixel count ranks the candidates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.image import RLEImage
from repro.workloads.spec import as_generator

__all__ = ["GLYPHS", "render_glyph", "render_string", "degrade_image", "match_glyph"]

# 5x7 dot-matrix font, one string per glyph row, '#' = foreground.
GLYPHS: Dict[str, Tuple[str, ...]] = {
    "A": (".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"),
    "B": ("####.", "#...#", "####.", "####.", "#...#", "#...#", "####."),
    "C": (".###.", "#...#", "#....", "#....", "#....", "#...#", ".###."),
    "D": ("####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."),
    "E": ("#####", "#....", "#....", "####.", "#....", "#....", "#####"),
    "F": ("#####", "#....", "#....", "####.", "#....", "#....", "#...."),
    "G": (".###.", "#...#", "#....", "#.###", "#...#", "#...#", ".###."),
    "H": ("#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"),
    "I": ("#####", "..#..", "..#..", "..#..", "..#..", "..#..", "#####"),
    "J": ("..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."),
    "K": ("#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"),
    "L": ("#....", "#....", "#....", "#....", "#....", "#....", "#####"),
    "M": ("#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"),
    "N": ("#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"),
    "O": (".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."),
    "P": ("####.", "#...#", "#...#", "####.", "#....", "#....", "#...."),
    "Q": (".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"),
    "R": ("####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"),
    "S": (".####", "#....", "#....", ".###.", "....#", "....#", "####."),
    "T": ("#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."),
    "U": ("#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."),
    "V": ("#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."),
    "W": ("#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"),
    "X": ("#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"),
    "Y": ("#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."),
    "Z": ("#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"),
    "0": (".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."),
    "1": ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."),
    "2": (".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"),
    "3": (".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."),
    "4": ("...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."),
    "5": ("#####", "#....", "####.", "....#", "....#", "#...#", ".###."),
    "6": (".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."),
    "7": ("#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."),
    "8": (".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."),
    "9": (".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."),
    " ": (".....", ".....", ".....", ".....", ".....", ".....", "....."),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5


def render_glyph(char: str, scale: int = 1) -> RLEImage:
    """Render one glyph, optionally magnified ``scale``× in each axis."""
    if char.upper() not in GLYPHS:
        raise WorkloadError(f"no glyph for {char!r}")
    if scale < 1:
        raise WorkloadError(f"scale must be >= 1, got {scale}")
    rows = GLYPHS[char.upper()]
    arr = np.array([[c == "#" for c in row] for row in rows], dtype=bool)
    if scale > 1:
        arr = np.repeat(np.repeat(arr, scale, axis=0), scale, axis=1)
    return RLEImage.from_array(arr)


def render_string(
    text: str, scale: int = 1, spacing: int = 1, margin: int = 1
) -> RLEImage:
    """Render a string left to right on one baseline."""
    if not text:
        raise WorkloadError("cannot render an empty string")
    glyphs = [render_glyph(c, scale).to_array() for c in text]
    h = GLYPH_HEIGHT * scale
    gap = spacing * scale
    width = sum(g.shape[1] for g in glyphs) + gap * (len(glyphs) - 1) + 2 * margin
    canvas = np.zeros((h + 2 * margin, width), dtype=bool)
    x = margin
    for g in glyphs:
        canvas[margin : margin + h, x : x + g.shape[1]] = g
        x += g.shape[1] + gap
    return RLEImage.from_array(canvas)


def degrade_image(
    image: RLEImage, flip_probability: float = 0.02, seed: SeedLike = None
) -> RLEImage:
    """Per-pixel flip degradation — simulated print/scan noise."""
    rng = as_generator(seed)
    arr = image.to_array()
    flips = rng.random(arr.shape) < flip_probability
    return RLEImage.from_array(arr ^ flips)


def match_glyph(
    sample: RLEImage, scale: int = 1, candidates: Optional[str] = None
) -> List[Tuple[str, int]]:
    """Rank candidate glyphs by XOR distance to ``sample``.

    Returns ``(char, differing_pixels)`` pairs, best match first — the
    template-matching flow the paper's hardware would accelerate.
    """
    from repro.rle.ops2d import xor_images

    chars = candidates if candidates is not None else "".join(
        c for c in GLYPHS if c != " "
    )
    scores: List[Tuple[str, int]] = []
    for c in chars:
        template = render_glyph(c, scale)
        if template.shape != sample.shape:
            raise WorkloadError(
                f"sample shape {sample.shape} != template shape {template.shape}"
            )
        scores.append((c, xor_images(sample, template).pixel_count))
    scores.sort(key=lambda pair: pair[1])
    return scores
