"""Synthetic map / line-drawing workload.

Map analysis is another application from the paper's introduction
("efficient morphological processing of maps and line drawings", ref.
[6]).  This generator rasterizes a street-map-like line drawing — a
jittered grid of roads plus random diagonal connectors — and produces a
*revision* with a few segments added or removed.  Comparing map
revisions is again the highly-similar regime: the difference is a
handful of thin strokes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.image import RLEImage
from repro.workloads.spec import as_generator

__all__ = ["Segment", "draw_segments", "generate_map", "revise_map"]


@dataclass(frozen=True)
class Segment:
    """One stroke: endpoints (y, x) inclusive, with a stroke thickness."""

    start: Tuple[int, int]
    end: Tuple[int, int]
    thickness: int = 1


def _raster_segment(canvas: np.ndarray, seg: Segment) -> None:
    """Bresenham-style rasterization with square brush thickness."""
    h, w = canvas.shape
    (y0, x0), (y1, x1) = seg.start, seg.end
    steps = max(abs(y1 - y0), abs(x1 - x0), 1)
    t = seg.thickness
    for i in range(steps + 1):
        y = round(y0 + (y1 - y0) * i / steps)
        x = round(x0 + (x1 - x0) * i / steps)
        ylo, yhi = max(0, y - t // 2), min(h, y + (t + 1) // 2)
        xlo, xhi = max(0, x - t // 2), min(w, x + (t + 1) // 2)
        canvas[ylo:yhi, xlo:xhi] = True


def draw_segments(
    height: int, width: int, segments: List[Segment]
) -> RLEImage:
    """Rasterize a list of strokes onto a blank canvas."""
    canvas = np.zeros((height, width), dtype=bool)
    for seg in segments:
        _raster_segment(canvas, seg)
    return RLEImage.from_array(canvas)


def generate_map(
    height: int = 192,
    width: int = 192,
    block: int = 24,
    jitter: int = 3,
    diagonals: int = 5,
    thickness: int = 2,
    seed: SeedLike = None,
) -> Tuple[RLEImage, List[Segment]]:
    """A street-map-like drawing; returns the image and its segments.

    Horizontal/vertical roads on a jittered ``block`` grid plus a few
    random diagonal connectors.
    """
    if block < 4:
        raise WorkloadError(f"block must be >= 4, got {block}")
    rng = as_generator(seed)
    segments: List[Segment] = []
    for y in range(block, height - 2, block):
        yy = y + int(rng.integers(-jitter, jitter + 1))
        segments.append(Segment((yy, 0), (yy, width - 1), thickness))
    for x in range(block, width - 2, block):
        xx = x + int(rng.integers(-jitter, jitter + 1))
        segments.append(Segment((0, xx), (height - 1, xx), thickness))
    for _ in range(diagonals):
        y0 = int(rng.integers(0, height))
        x0 = int(rng.integers(0, width))
        y1 = min(height - 1, y0 + int(rng.integers(10, 2 * block)))
        x1 = min(width - 1, x0 + int(rng.integers(10, 2 * block)))
        segments.append(Segment((y0, x0), (y1, x1), thickness))
    return draw_segments(height, width, segments), segments


def revise_map(
    height: int,
    width: int,
    segments: List[Segment],
    additions: int = 2,
    removals: int = 1,
    seed: SeedLike = None,
) -> Tuple[RLEImage, List[Segment]]:
    """A map revision: drop ``removals`` random segments, add
    ``additions`` new connectors.  Returns the revised raster and its
    segment list."""
    if removals > len(segments):
        raise WorkloadError(
            f"cannot remove {removals} of {len(segments)} segments"
        )
    rng = as_generator(seed)
    kept = list(segments)
    for _ in range(removals):
        kept.pop(int(rng.integers(0, len(kept))))
    for _ in range(additions):
        y0 = int(rng.integers(0, height))
        x0 = int(rng.integers(0, width))
        y1 = min(height - 1, y0 + int(rng.integers(8, 40)))
        x1 = min(width - 1, x0 + int(rng.integers(8, 40)))
        kept.append(Segment((y0, x0), (y1, x1), thickness=2))
    return draw_segments(height, width, kept), kept
