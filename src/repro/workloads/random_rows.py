"""The paper's Section 5 random-row generator.

Base rows alternate uniformly-sampled gaps and runs; the second image of
a pair is ``base XOR error_mask`` — which is precisely "flipping some of
the bits of the first image in either direction (1 to 0, and 0 to 1) ...
in runs of length 2 to 6".

Everything returns validated :class:`~repro.rle.row.RLERow` objects, so
downstream code never sees raw pixel arrays unless it asks.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.ops import xor_rows
from repro.rle.row import RLERow
from repro.rle.run import Run
from repro.workloads.spec import BaseRowSpec, ErrorSpec, RowPairSpec, as_generator

__all__ = [
    "generate_base_row",
    "generate_error_mask",
    "generate_row_pair",
    "realize_spec",
]


def _uniform_int(rng: np.random.Generator, lo: int, hi: int) -> int:
    """Inclusive uniform integer."""
    return int(rng.integers(lo, hi + 1))


def generate_base_row(spec: BaseRowSpec, seed: SeedLike = None) -> RLERow:
    """Sample one base row: alternating gap/run with uniform lengths.

    Gap lengths are uniform on ``[1, 2*mean_gap - 1]`` so their mean hits
    the density target while staying at least 1 (keeping the row
    canonical).  The row is truncated at ``width``.
    """
    rng = as_generator(seed)
    lo, hi = spec.run_length
    max_gap = max(1, int(round(2 * spec.mean_gap - 1)))
    runs: List[Run] = []
    cursor = _uniform_int(rng, 0, max_gap)  # random lead-in gap
    while cursor < spec.width:
        length = _uniform_int(rng, lo, hi)
        length = min(length, spec.width - cursor)
        if length >= 1:
            runs.append(Run(cursor, length))
        cursor += length + _uniform_int(rng, 1, max_gap)
    return RLERow(runs, width=spec.width)


def generate_error_mask(
    spec: ErrorSpec, width: int, seed: SeedLike = None
) -> RLERow:
    """Sample the error mask — the runs of flipped bits.

    Two placement strategies, matching the spec's two modes:

    * **fraction mode** — the paper's own mechanism ("the percentage ...
      of the errors ... was varied by changing the average distance
      between the runs"): a gap/run walk whose mean gap hits the target
      pixel fraction.  Gaps may shrink to zero at high fractions, in
      which case the flip runs simply merge (flipping adjacent ranges is
      one longer flip) — the returned row is canonicalized.
    * **count mode** — exactly ``n_runs`` runs placed uniformly at
      random with at least one pixel of separation (rejection sampling;
      cheap because Table 1 uses only a handful of runs).
    """
    rng = as_generator(seed)
    lo, hi = spec.run_length

    if spec.fraction is not None:
        return _fraction_mask(spec, width, rng)

    assert spec.n_runs is not None
    occupied = np.zeros(width + 1, dtype=bool)  # +1 keeps separation at edge
    runs: List[Run] = []
    attempts = 0
    max_attempts = 200 * max(spec.n_runs, 1)
    while len(runs) < spec.n_runs:
        attempts += 1
        if attempts > max_attempts:
            raise WorkloadError(
                f"could not place {spec.n_runs} error runs in width {width}"
            )
        length = (
            spec.fixed_length
            if spec.fixed_length is not None
            else _uniform_int(rng, lo, hi)
        )
        if length > width:
            raise WorkloadError(
                f"error run of length {length} cannot fit in width {width}"
            )
        start = _uniform_int(rng, 0, width - length)
        span_lo = max(0, start - 1)
        span_hi = min(width, start + length + 1)
        if occupied[span_lo:span_hi].any():
            continue
        occupied[start : start + length] = True
        runs.append(Run(start, length))

    runs.sort(key=lambda r: r.start)
    return RLERow(runs, width=width)


def _fraction_mask(spec: ErrorSpec, width: int, rng: np.random.Generator) -> RLERow:
    """Gap/run walk hitting a target flipped-pixel fraction."""
    fraction = spec.fraction
    assert fraction is not None
    budget = int(round(fraction * width))
    if budget <= 0 or width == 0:
        return RLERow.empty(width)
    lo, hi = spec.run_length
    mean_len = (
        spec.fixed_length if spec.fixed_length is not None else (lo + hi) / 2.0
    )
    mean_gap = mean_len * (1.0 - fraction) / fraction
    max_gap = max(0, int(round(2 * mean_gap)))

    runs: List[Run] = []
    placed = 0
    # random lead-in so masks are translation-invariant on average
    cursor = _uniform_int(rng, 0, max(max_gap, 1))
    while cursor < width and placed < budget:
        length = (
            spec.fixed_length
            if spec.fixed_length is not None
            else _uniform_int(rng, lo, hi)
        )
        length = min(length, width - cursor, max(budget - placed, 1))
        if length >= 1:
            runs.append(Run(cursor, length))
            placed += length
        cursor += length + _uniform_int(rng, 0, max_gap)
    # zero gaps merge adjacent flip runs into longer flips
    return RLERow(runs, width=width).canonical()


def generate_row_pair(
    base_spec: BaseRowSpec,
    error_spec: ErrorSpec,
    seed: SeedLike = None,
) -> Tuple[RLERow, RLERow, RLERow]:
    """One Section 5 test case.

    Returns ``(row1, row2, error_mask)`` with ``row2 = row1 XOR mask``;
    the mask is returned so experiments can report the ground-truth
    error statistics alongside the measurements.
    """
    rng = as_generator(seed)
    base = generate_base_row(base_spec, rng)
    mask = generate_error_mask(error_spec, base_spec.width, rng)
    flipped = xor_rows(base, mask)
    return base, flipped, mask


def realize_spec(spec: RowPairSpec) -> Tuple[RLERow, RLERow, RLERow]:
    """Materialize a :class:`~repro.workloads.spec.RowPairSpec`."""
    return generate_row_pair(spec.base, spec.errors, spec.seed)
