"""Synthetic printed-circuit-board workload.

PCB inspection is the paper's motivating application: "Most PCB
inspection systems use a reference based approach which requires
comparison of the board image against the original CAD design."  The
authors' actual CAD data and scans are proprietary, so this module
synthesizes the same *structure*: a reference layout of traces, pads and
vias, plus a "scanned" copy with injected fabrication defects.  The
essential property the substitution preserves is the one the algorithm
exploits — the two images are **highly similar**, with differences
confined to a handful of small blobs, so per-row run-count differences
are tiny and the systolic time collapses.

Defect taxonomy (standard AOI classes):

* ``open``      — a trace interrupted (copper missing);
* ``short``     — a bridge between two adjacent traces (copper extra);
* ``mousebite`` — a notch chewed out of a trace edge;
* ``spur``      — a burr of extra copper on a trace edge;
* ``pinhole``   — a small hole inside a pad;
* ``spurious``  — an isolated copper splash on bare board.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.errors import WorkloadError
from repro.rle.image import RLEImage
from repro.workloads.spec import as_generator

__all__ = ["PCBLayout", "Defect", "generate_board", "inject_defects", "generate_inspection_case"]

DefectType = Literal["open", "short", "mousebite", "spur", "pinhole", "spurious"]
DEFECT_TYPES: Tuple[DefectType, ...] = (
    "open",
    "short",
    "mousebite",
    "spur",
    "pinhole",
    "spurious",
)


@dataclass(frozen=True)
class PCBLayout:
    """Geometry parameters of the synthetic board raster.

    Defaults give a plausible 2-layer-ish digital board section with
    ~20–30 % copper density — the regime of the paper's experiments.
    """

    height: int = 256
    width: int = 256
    trace_width: int = 3
    trace_pitch: int = 14
    pad_size: int = 9
    pads_per_row: int = 5
    via_radius: int = 2

    def __post_init__(self) -> None:
        if self.height < 16 or self.width < 16:
            raise WorkloadError("board must be at least 16x16")
        if self.trace_width >= self.trace_pitch:
            raise WorkloadError("trace_width must be < trace_pitch")


@dataclass(frozen=True)
class Defect:
    """Ground truth for one injected defect."""

    kind: DefectType
    #: Bounding box (top, left, bottom, right), inclusive.
    bbox: Tuple[int, int, int, int]
    #: True when the defect adds copper, False when it removes copper.
    adds_copper: bool

    @property
    def center(self) -> Tuple[int, int]:
        t, l, b, r = self.bbox
        return ((t + b) // 2, (l + r) // 2)


def generate_board(layout: PCBLayout = PCBLayout(), seed: SeedLike = None) -> RLEImage:
    """Rasterize a synthetic reference board.

    Horizontal traces on a regular pitch, a bus of vertical traces,
    rows of square pads, and vias where traces cross — structured,
    axis-aligned foreground exactly like binarized real boards.
    """
    rng = as_generator(seed)
    h, w = layout.height, layout.width
    board = np.zeros((h, w), dtype=bool)

    # horizontal traces (skip a margin for the pad field at the top)
    pad_field = layout.pad_size + 6
    for y in range(pad_field, h - layout.trace_width, layout.trace_pitch):
        # traces have random horizontal extent to vary run structure
        x0 = int(rng.integers(0, w // 8))
        x1 = int(rng.integers(7 * w // 8, w))
        board[y : y + layout.trace_width, x0:x1] = True

    # a vertical bus on the left quarter
    for x in range(4, w // 4, layout.trace_pitch):
        board[pad_field:h, x : x + layout.trace_width] = True

    # pad row along the top
    gap = max(1, (w - layout.pads_per_row * layout.pad_size) // (layout.pads_per_row + 1))
    x = gap
    for _ in range(layout.pads_per_row):
        if x + layout.pad_size >= w:
            break
        board[3 : 3 + layout.pad_size, x : x + layout.pad_size] = True
        x += layout.pad_size + gap

    # vias at a few random trace crossings
    ys = np.arange(pad_field, h - layout.trace_width, layout.trace_pitch)
    xs = np.arange(4, w // 4, layout.trace_pitch)
    if len(ys) and len(xs):
        for _ in range(min(6, len(ys) * len(xs))):
            cy = int(rng.choice(ys)) + layout.trace_width // 2
            cx = int(rng.choice(xs)) + layout.trace_width // 2
            r = layout.via_radius + 1
            yy, xx = np.ogrid[-r : r + 1, -r : r + 1]
            disc = yy * yy + xx * xx <= r * r
            y0, x0 = max(cy - r, 0), max(cx - r, 0)
            y1, x1 = min(cy + r + 1, h), min(cx + r + 1, w)
            board[y0:y1, x0:x1] |= disc[
                y0 - (cy - r) : disc.shape[0] - ((cy + r + 1) - y1),
                x0 - (cx - r) : disc.shape[1] - ((cx + r + 1) - x1),
            ]

    return RLEImage.from_array(board)


def _random_trace_point(
    board: np.ndarray, rng: np.random.Generator, want_copper: bool
) -> Optional[Tuple[int, int]]:
    """A random pixel on (or off) copper, away from the border."""
    h, w = board.shape
    for _ in range(200):
        y = int(rng.integers(4, h - 4))
        x = int(rng.integers(4, w - 4))
        if bool(board[y, x]) == want_copper:
            return y, x
    return None


def inject_defects(
    reference: RLEImage,
    n_defects: int,
    kinds: Tuple[DefectType, ...] = DEFECT_TYPES,
    seed: SeedLike = None,
) -> Tuple[RLEImage, List[Defect]]:
    """Produce the "scanned" image: the reference plus ``n_defects``
    random defects.  Returns the defective image and the ground truth."""
    rng = as_generator(seed)
    board = reference.to_array().copy()
    h, w = board.shape
    defects: List[Defect] = []

    for _ in range(n_defects):
        kind: DefectType = kinds[int(rng.integers(0, len(kinds)))]
        if kind in ("open", "mousebite", "pinhole"):
            spot = _random_trace_point(board, rng, want_copper=True)
            adds = False
        else:
            spot = _random_trace_point(board, rng, want_copper=False)
            adds = True
        if spot is None:
            continue
        y, x = spot
        if kind == "open":
            dy, dx = 2, int(rng.integers(3, 7))
        elif kind == "short":
            dy, dx = int(rng.integers(6, 14)), 2
        elif kind in ("mousebite", "spur"):
            dy, dx = 2, 2
        elif kind == "pinhole":
            dy, dx = 1, 1
        else:  # spurious copper splash
            dy, dx = int(rng.integers(2, 5)), int(rng.integers(2, 5))
        y0, y1 = max(0, y - dy // 2), min(h, y + (dy + 1) // 2 + 1)
        x0, x1 = max(0, x - dx // 2), min(w, x + (dx + 1) // 2 + 1)
        board[y0:y1, x0:x1] = adds
        defects.append(
            Defect(kind=kind, bbox=(y0, x0, y1 - 1, x1 - 1), adds_copper=adds)
        )

    return RLEImage.from_array(board), defects


def generate_inspection_case(
    layout: PCBLayout = PCBLayout(),
    n_defects: int = 4,
    seed: SeedLike = None,
) -> Tuple[RLEImage, RLEImage, List[Defect]]:
    """One full inspection scenario: ``(reference, scanned, ground_truth)``."""
    rng = as_generator(seed)
    reference = generate_board(layout, rng)
    scanned, defects = inject_defects(reference, n_defects, seed=rng)
    return reference, scanned, defects
