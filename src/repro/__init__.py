"""repro — systolic processing of RLE-compressed binary images.

A faithful, production-quality reproduction of

    F. Ercal, M. Allen, H. Feng,
    "A Systolic Algorithm to Process Compressed Binary Images",
    IPPS/SPDP Workshops 1999.

The package implements the paper's systolic XOR array for run-length
encoded binary rows, the sequential baseline it is compared against, the
RLE substrate both are built on, the workload generators of the paper's
evaluation, and the broadcast-bus extension sketched as future work.

Quickstart
----------
>>> from repro import RLERow, row_diff
>>> a = RLERow.from_pairs([(10, 3), (16, 2), (23, 2), (27, 3)])
>>> b = RLERow.from_pairs([(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)])
>>> row_diff(a, b).result.to_pairs()
[(3, 4), (8, 2), (15, 1), (18, 2), (30, 1)]
"""

from repro.rle import RLEImage, RLERow, Run
from repro.core.api import image_diff, row_diff
from repro.core.machine import SystolicXorMachine
from repro.core.options import ENGINE_NAMES, DiffOptions, EngineName
from repro.core.sequential import sequential_xor
from repro.core.vectorized import VectorizedXorEngine

__version__ = "1.1.0"

__all__ = [
    "Run",
    "RLERow",
    "RLEImage",
    "row_diff",
    "image_diff",
    "DiffOptions",
    "EngineName",
    "ENGINE_NAMES",
    "SystolicXorMachine",
    "VectorizedXorEngine",
    "sequential_xor",
    "__version__",
]
