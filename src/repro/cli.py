"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``demo``       the paper's Figure 1/3 worked example, traced cycle by cycle
``figure5``    regenerate Figure 5 (iterations vs. error percentage)
``table1``     regenerate Table 1 (systolic vs. sequential, sizes 128–2048)
``ablation``   future-work ablations: broadcast bus and compaction pass
``inspect``    synthetic PCB inspection end-to-end demo
``bench-engines``  time the engines on one Figure-5-style image and
               cross-check their results against the sequential baseline
``profile``    run one instrumented diff and export the observability
               documents: metrics JSON + Prometheus text, Chrome trace,
               and the per-iteration convergence profile
               (see docs/OBSERVABILITY.md)
``serve``      run a repeated-frame clip through the cached
               :class:`~repro.service.DiffService` and report cache
               hit rate / batching stats (see docs/API.md); with
               ``--min-hit-rate`` it doubles as the CI smoke gate.
               ``--workers N`` shards the service over N processes
               routed by row fingerprint, ``--listen HOST:PORT`` serves
               it over TCP, and ``--selftest`` round-trips the clip
               through a client and gates on byte-identity, merged
               metrics, health, distributed tracing and structured-log
               schema (see docs/SERVING.md).  ``--stream`` serves the
               clip as a streaming frame-delta session instead — one
               key frame plus XOR deltas with adaptive rekeying
               (``--rekey-ratio``/``--max-chain``), decode-identity
               checked, composing with ``--workers``/``--listen``/
               ``--selftest`` for the TCP stream gate
               (see docs/API.md "Streaming sessions")
``top``        poll a running sharded server's ``health``/``stats`` ops
               and render a one-line-per-sample live fleet view
               (status, latency quantiles, SLO burn, cache hit rate)
``lint``       run ``rlelint``, the domain-aware static analyzer
               (see docs/STATIC_ANALYSIS.md)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolic RLE image difference (Ercal, Allen & Feng, IPPS 1999) — reproduction toolkit",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="trace the paper's worked example")

    p5 = sub.add_parser("figure5", help="regenerate Figure 5")
    p5.add_argument("--width", type=int, default=10_000, help="row width in pixels")
    p5.add_argument("--reps", type=int, default=10, help="repetitions per point")
    p5.add_argument("--csv", type=str, default=None, help="write the series to CSV")

    t1 = sub.add_parser("table1", help="regenerate Table 1")
    t1.add_argument("--reps", type=int, default=30, help="repetitions per point")
    t1.add_argument("--csv", type=str, default=None, help="write the table to CSV")

    ab = sub.add_parser("ablation", help="future-work ablations")
    ab.add_argument(
        "which", choices=("bus", "compaction"), help="which ablation to run"
    )
    ab.add_argument("--reps", type=int, default=10)

    ins = sub.add_parser("inspect", help="synthetic PCB inspection demo")
    ins.add_argument("--seed", type=int, default=7)
    ins.add_argument("--defects", type=int, default=4)
    ins.add_argument("--size", type=int, default=192, help="board edge length")

    ver = sub.add_parser(
        "verify", help="run a random case with trace recording and check the certificate"
    )
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument("--width", type=int, default=512)
    ver.add_argument(
        "--inject-fault",
        action="store_true",
        help="corrupt the run to show the verifier rejecting it",
    )

    thy = sub.add_parser(
        "theory", help="analytic iteration model vs a quick measurement"
    )
    thy.add_argument("--width", type=int, default=10_000)
    thy.add_argument("--reps", type=int, default=6)

    rtl = sub.add_parser("rtl", help="hardware cell: area estimate / Verilog")
    rtl.add_argument(
        "what", choices=("area", "verilog"), help="print gate budget or HDL source"
    )

    be = sub.add_parser(
        "bench-engines",
        help="time the engines on a Figure-5-style image; fail on divergence",
    )
    be.add_argument("--rows", type=int, default=128, help="image height")
    be.add_argument("--width", type=int, default=4_000, help="row width in pixels")
    be.add_argument(
        "--error-fraction", type=float, default=0.05, help="fraction of differing pixels"
    )
    be.add_argument("--seed", type=int, default=0)
    be.add_argument(
        "--engines",
        type=str,
        default="batched,vectorized,sequential",
        help="comma-separated engine list (first engine's runtime is the baseline)",
    )

    pf = sub.add_parser(
        "profile",
        help="instrumented diff: export metrics, Chrome trace and convergence profile",
    )
    pf.add_argument("--rows", type=int, default=64, help="image height")
    pf.add_argument("--width", type=int, default=2_000, help="row width in pixels")
    pf.add_argument(
        "--error-fraction", type=float, default=0.05, help="fraction of differing pixels"
    )
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument(
        "--out-dir", type=str, default="results/profile", help="artifact directory"
    )
    pf.add_argument(
        "--validate",
        action="store_true",
        help="schema-validate every emitted document (exit 1 on violation)",
    )

    from repro.core.options import ENGINE_NAMES

    sv = sub.add_parser(
        "serve",
        help="run a synthetic clip through the cached DiffService; "
        "report hit rate and batching stats",
    )
    sv.add_argument("--height", type=int, default=96, help="frame height")
    sv.add_argument("--width", type=int, default=96, help="frame width")
    sv.add_argument("--frames", type=int, default=8, help="frames in the clip")
    sv.add_argument(
        "--passes", type=int, default=2, help="times the clip is replayed"
    )
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--engine", choices=ENGINE_NAMES, default="batched", help="engine to serve with"
    )
    sv.add_argument(
        "--cache-mb", type=float, default=32.0, help="cache budget in MiB (0 disables)"
    )
    sv.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="exit 1 if the final cache hit rate is below this fraction",
    )
    sv.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="persist the cache to this directory (disk tier under the "
        "RAM LRU: warm restarts, corruption quarantine; with --workers "
        "the directory is partitioned per worker)",
    )
    sv.add_argument(
        "--disk-mb",
        type=float,
        default=None,
        help="with --cache-dir: on-disk byte budget in MiB "
        "(default: 256)",
    )
    sv.add_argument(
        "--resilient",
        action="store_true",
        help="serve through ResilientDiffService (deadlines, retries, breaker)",
    )
    sv.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds (implies --resilient)",
    )
    sv.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="engine batch retries before giving up (with --resilient)",
    )
    sv.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        help="inject faults into this fraction of engine batches "
        "(seeded by --chaos-seed; implies --resilient)",
    )
    sv.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault schedule",
    )
    sv.add_argument(
        "--max-shed",
        type=int,
        default=None,
        help="exit 1 if more than this many requests were shed "
        "(with --resilient; default: no gate)",
    )
    sv.add_argument(
        "--min-availability",
        type=float,
        default=None,
        help="exit 1 if the served fraction of frame pairs falls below "
        "this floor (default: no gate)",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the service over this many worker processes routed "
        "by row fingerprint (0 = in-process; see docs/SERVING.md)",
    )
    sv.add_argument(
        "--listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="with --workers: serve the sharded tier over TCP on this "
        "address (port 0 picks a free port)",
    )
    sv.add_argument(
        "--selftest",
        action="store_true",
        help="with --listen: round-trip the clip through a TCP client, "
        "verify byte-identity with a single-process DiffService and "
        "merged-metrics sanity, then exit (the CI smoke mode)",
    )
    sv.add_argument(
        "--stream",
        action="store_true",
        help="serve the clip as a streaming frame-delta session "
        "(stream_open / stream_frame / stream_close) instead of "
        "per-pair diffs; decoded frames are checked byte-identical "
        "(see docs/API.md 'Streaming sessions')",
    )
    sv.add_argument(
        "--rekey-ratio",
        type=float,
        default=None,
        help="with --stream: rekey when the delta runs accumulated "
        "since the key frame exceed this multiple of the key frame's "
        "runs (default: the StreamPolicy default)",
    )

    tp = sub.add_parser(
        "top",
        help="live fleet stats for a running sharded server "
        "(health, latency quantiles, SLO burn, cache hit rate)",
    )
    tp.add_argument(
        "address", metavar="HOST:PORT", help="a running `repro serve --listen` server"
    )
    tp.add_argument(
        "--interval", type=float, default=2.0, help="seconds between samples"
    )
    tp.add_argument(
        "--samples",
        type=int,
        default=0,
        help="stop after this many samples (0 = run until interrupted)",
    )

    from repro.analysis.lint.cli import configure_parser as configure_lint_parser

    lint = sub.add_parser(
        "lint",
        help="static analysis: invariant, exception, hot-path and typing rules",
    )
    configure_lint_parser(lint)

    return parser


# --------------------------------------------------------------------- #
def _cmd_demo() -> int:
    from repro.rle.row import RLERow
    from repro.core.machine import SystolicXorMachine
    from repro.systolic.trace import render_trace_table

    row_a = RLERow.from_pairs([(10, 3), (16, 2), (23, 2), (27, 3)], width=40)
    row_b = RLERow.from_pairs([(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)], width=40)
    print("Image 1 row:", row_a.to_pairs())
    print("Image 2 row:", row_b.to_pairs())
    machine = SystolicXorMachine(record_trace=True, paranoid=True)
    result = machine.diff(row_a, row_b)
    print()
    print(render_trace_table(result.trace.entries, max_cells=6))
    print()
    print(f"XOR result : {result.result.to_pairs()}")
    print(f"iterations : {result.iterations} (Theorem 1 bound: {result.termination_bound})")
    return 0


def _cmd_figure5(width: int, reps: int, csv: Optional[str]) -> int:
    from repro.analysis.experiments import figure5_sweep
    from repro.analysis.aggregate import aggregate
    from repro.analysis.asciiplot import ascii_plot
    from repro.analysis.report import format_table, to_csv

    records = figure5_sweep(width=width, repetitions=reps)
    rows = aggregate(
        records, ["error_fraction"], ["iterations", "run_difference", "k3"]
    )
    print(
        format_table(
            rows,
            columns=["error_fraction", "iterations", "run_difference", "k3", "n"],
            title=f"Figure 5 — {width} px rows, 30% density, {reps} reps/point",
        )
    )
    series = {
        "iterations": [(r["error_fraction"], r["iterations"]) for r in rows],
        "|k1-k2|": [(r["error_fraction"], r["run_difference"]) for r in rows],
        "k3 (runs in XOR)": [(r["error_fraction"], r["k3"]) for r in rows],
    }
    print()
    print(
        ascii_plot(
            series,
            title="Figure 5: iterations vs. fraction of differing pixels",
            xlabel="fraction of pixels differing",
        )
    )
    if csv:
        to_csv(rows, csv)
        print(f"\nwrote {csv}")
    return 0


def _cmd_table1(reps: int, csv: Optional[str]) -> int:
    from repro.analysis.experiments import table1_sweep
    from repro.analysis.aggregate import aggregate
    from repro.analysis.report import format_table, to_csv

    records = table1_sweep(repetitions=reps)
    rows = aggregate(
        records,
        ["errors", "width"],
        ["systolic_iterations", "sequential_iterations"],
    )
    print(
        format_table(
            rows,
            columns=[
                "errors",
                "width",
                "systolic_iterations",
                "sequential_iterations",
                "n",
            ],
            title=f"Table 1 — average iterations vs image size ({reps} reps/point)",
        )
    )
    if csv:
        to_csv(rows, csv)
        print(f"\nwrote {csv}")
    return 0


def _cmd_ablation(which: str, reps: int) -> int:
    from repro.analysis.aggregate import aggregate
    from repro.analysis.report import format_table

    if which == "bus":
        from repro.analysis.experiments import bus_ablation_sweep

        records = bus_ablation_sweep(repetitions=reps)
        rows = aggregate(
            records,
            ["error_fraction"],
            ["systolic_iterations", "bus_cycles", "speedup", "ripple_cycles_saved"],
        )
        print(
            format_table(
                rows,
                columns=[
                    "error_fraction",
                    "systolic_iterations",
                    "bus_cycles",
                    "speedup",
                    "ripple_cycles_saved",
                ],
                title="Ablation: pure systolic vs broadcast-bus shifts",
            )
        )
    else:
        from repro.analysis.experiments import compaction_sweep

        records = compaction_sweep(repetitions=reps)
        rows = aggregate(
            records,
            ["error_fraction"],
            [
                "raw_runs",
                "canonical_runs",
                "mergeable_pairs",
                "systolic_compaction_cycles",
                "bus_compaction_cycles",
            ],
        )
        print(
            format_table(
                rows,
                columns=[
                    "error_fraction",
                    "raw_runs",
                    "canonical_runs",
                    "mergeable_pairs",
                    "systolic_compaction_cycles",
                    "bus_compaction_cycles",
                ],
                title="Ablation: final compaction pass, systolic vs bus",
            )
        )
    return 0


def _cmd_inspect(seed: int, defects: int, size: int) -> int:
    from repro.workloads.pcb import PCBLayout, generate_inspection_case
    from repro.inspection.pipeline import InspectionSystem

    layout = PCBLayout(height=size, width=size)
    reference, scan, truth = generate_inspection_case(
        layout, n_defects=defects, seed=seed
    )
    print(
        f"board {size}x{size}: {reference.total_runs} reference runs, "
        f"density {reference.density():.2f}, {len(truth)} injected defects"
    )
    system = InspectionSystem(reference)
    report = system.inspect(scan)
    print(report.summary())
    print("stage seconds:", {k: round(v, 4) for k, v in report.stage_seconds.items()})
    return 0


def _cmd_verify(seed: int, width: int, inject_fault: bool) -> int:
    import numpy as np

    from repro.rle.row import RLERow
    from repro.core.machine import SystolicXorMachine
    from repro.core.verifier import verify_trace
    from repro.systolic.faults import Fault, FaultInjector
    from repro.systolic.trace import TraceRecorder

    rng = np.random.default_rng(seed)
    row_a = RLERow.from_bits(rng.random(width) < 0.3)
    row_b = RLERow.from_bits(rng.random(width) < 0.3)
    machine = SystolicXorMachine()
    array, _stats = machine.build_array(row_a, row_b)
    recorder = TraceRecorder().attach(array)
    if inject_fault:
        # a single-event upset on cell 0's RegSmall right after the first
        # normalize — always occupied for non-empty inputs, so the fault
        # is guaranteed to bite
        def upset(cell):
            if not cell.small.is_empty:
                cell.small.start += 1

        FaultInjector(
            [Fault(iteration=1, phase="normalize", cell_index=0, mutate=upset,
                   description="SEU on cell 0 RegSmall")]
        ).attach(array)
    try:
        array.run(max_iterations=row_a.run_count + row_b.run_count + 5)
    except Exception as exc:  # corrupted runs may fail hard
        print(f"(run aborted: {exc})")
    report = verify_trace(recorder.entries, row_a, row_b)
    print(
        f"inputs: k1={row_a.run_count}, k2={row_b.run_count}; "
        f"trace covers {report.iterations_checked} iterations"
    )
    if report.ok:
        print("certificate ACCEPTED — every transition legal, result correct")
        return 0
    print(f"certificate REJECTED — {len(report.problems)} problem(s):")
    for problem in report.problems[:8]:
        print("  ", problem)
    return 1


def _cmd_theory(width: int, reps: int) -> int:
    from repro.analysis.experiments import figure5_sweep
    from repro.analysis.aggregate import aggregate
    from repro.analysis.report import format_table
    from repro.analysis.theory import delta_distribution, predicted_iterations
    from repro.workloads.spec import BaseRowSpec, ErrorSpec

    base = BaseRowSpec(width=width, density=0.30)
    model = delta_distribution(base, ErrorSpec(fraction=0.05))
    print(
        f"model: p_transition = 2/(E[R]+E[G]) = {model.p_transition:.4f}  "
        f"=> E[dK per error run] = {model.mean:.3f}"
    )
    fractions = (0.01, 0.02, 0.05, 0.10)
    records = figure5_sweep(fractions=fractions, width=width, repetitions=reps)
    rows = aggregate(records, ["error_fraction"], ["iterations"])
    for r in rows:
        f = float(r["error_fraction"])
        r["predicted"] = predicted_iterations(base, ErrorSpec(fraction=f), f)
    print(
        format_table(
            rows,
            columns=["error_fraction", "iterations", "predicted", "n"],
            title="predicted vs measured systolic iterations (no fitted constants)",
        )
    )
    return 0


def _cmd_rtl(what: str) -> int:
    if what == "area":
        from repro.systolic.rtl import RTLCell, WORD_WIDTH

        est = RTLCell.area_estimate()
        print(f"XOR cell @ {WORD_WIDTH}-bit coordinates (NAND2-equivalents):")
        for key, value in est.items():
            print(f"  {key:<14} {value:>6}")
    else:
        from repro.systolic.verilog import emit_cell_module

        print(emit_cell_module())
    return 0


def _cmd_bench_engines(
    rows: int, width: int, error_fraction: float, seed: int, engines: str
) -> int:
    import time

    from repro.core.options import ENGINE_NAMES, DiffOptions
    from repro.core.pipeline import diff_images
    from repro.rle.image import RLEImage
    from repro.workloads.random_rows import generate_row_pair
    from repro.workloads.spec import BaseRowSpec, ErrorSpec

    base = BaseRowSpec(width=width, density=0.30)
    errors = ErrorSpec(fraction=error_fraction)
    rows_a, rows_b = [], []
    for y in range(rows):
        ra, rb, _mask = generate_row_pair(base, errors, seed=seed * 100_003 + y)
        rows_a.append(ra)
        rows_b.append(rb)
    image_a = RLEImage(rows_a, width=width)
    image_b = RLEImage(rows_b, width=width)
    print(
        f"image: {rows} rows x {width} px, density 0.30, "
        f"{error_fraction:.0%} differing pixels, seed {seed}"
    )

    names = [name.strip() for name in engines.split(",") if name.strip()]
    bad = [name for name in names if name not in ENGINE_NAMES]
    if bad or not names:
        print(
            f"error: unknown engine(s) {', '.join(bad) or '(none given)'} — "
            f"choose from {', '.join(ENGINE_NAMES)}"
        )
        return 2
    baseline = diff_images(image_a, image_b, options=DiffOptions(engine="sequential"))
    baseline_pixels = [r.to_pairs() for r in baseline.image]
    timings = []
    diverged = False
    for name in names:
        t0 = time.perf_counter()
        result = diff_images(image_a, image_b, options=DiffOptions(engine=name))
        elapsed = time.perf_counter() - t0
        ok = [r.to_pairs() for r in result.image] == baseline_pixels
        diverged |= not ok
        timings.append((name, elapsed, result.total_iterations, ok))
    ref_time = timings[0][1]
    print(f"{'engine':<12} {'seconds':>9} {'speedup':>8} {'total_iters':>12} match")
    for name, elapsed, total_iters, ok in timings:
        speedup = ref_time / elapsed if elapsed else float("inf")
        print(
            f"{name:<12} {elapsed:>9.4f} {speedup:>7.2f}x {total_iters:>12} "
            f"{'ok' if ok else 'DIVERGED'}"
        )
    if diverged:
        print("ERROR: at least one engine diverged from the sequential baseline")
        return 1
    return 0


def _cmd_profile(
    rows: int,
    width: int,
    error_fraction: float,
    seed: int,
    out_dir: str,
    validate: bool,
) -> int:
    import json
    from pathlib import Path

    from repro.core.options import DiffOptions
    from repro.core.pipeline import diff_images
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import EngineProfiler
    from repro.obs.tracing import Tracer
    from repro.rle.image import RLEImage
    from repro.workloads.random_rows import generate_row_pair
    from repro.workloads.spec import BaseRowSpec, ErrorSpec

    base = BaseRowSpec(width=width, density=0.30)
    errors = ErrorSpec(fraction=error_fraction)
    rows_a, rows_b = [], []
    for y in range(rows):
        ra, rb, _mask = generate_row_pair(base, errors, seed=seed * 100_003 + y)
        rows_a.append(ra)
        rows_b.append(rb)
    image_a = RLEImage(rows_a, width=width)
    image_b = RLEImage(rows_b, width=width)
    print(
        f"image: {rows} rows x {width} px, density 0.30, "
        f"{error_fraction:.0%} differing pixels, seed {seed}"
    )

    registry = MetricsRegistry()
    tracer = Tracer()
    probe = EngineProfiler()
    result = diff_images(
        image_a,
        image_b,
        options=DiffOptions(
            engine="batched", tracer=tracer, metrics=registry, probe=probe
        ),
    )
    print(
        f"diff: {result.total_iterations} total iterations over {rows} rows "
        f"(max {result.max_iterations}, mean {result.mean_iterations:.1f}); "
        f"{result.difference_pixels} differing pixels"
    )
    print()
    print("convergence (Corollary 1.1 — the RegBig front drains left to right):")
    print(probe.render_table())

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    metrics_doc = registry.to_json()
    trace_doc = tracer.to_chrome_trace()
    profile_doc = probe.to_dict()
    written = []
    for name, payload in (
        ("metrics.json", metrics_doc),
        ("trace.json", trace_doc),
        ("profile.json", profile_doc),
    ):
        path = out / name
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        written.append(path)
    prom_path = out / "metrics.prom"
    prom_path.write_text(registry.to_prometheus_text(), encoding="utf-8")
    written.append(prom_path)
    print()
    for path in written:
        print(f"wrote {path}")

    if validate:
        from repro.errors import ObservabilityError
        from repro.obs.schema import (
            validate_chrome_trace,
            validate_metrics_json,
            validate_nested,
            validate_profile_json,
        )

        try:
            validate_metrics_json(metrics_doc)
            validate_chrome_trace(
                trace_doc, required_names=("image_diff", "row_batch", "step")
            )
            validate_nested(trace_doc, "image_diff", "row_batch")
            validate_nested(trace_doc, "row_batch", "step")
            validate_profile_json(profile_doc)
        except ObservabilityError as exc:
            print(f"VALIDATION FAILED: {exc}")
            return 1
        print("validation: all documents conform to their schemas")
    return 0


def _cmd_serve(
    height: int,
    width: int,
    frames: int,
    passes: int,
    seed: int,
    engine: str,
    cache_mb: float,
    min_hit_rate: Optional[float],
    resilient: bool = False,
    deadline: Optional[float] = None,
    max_retries: int = 2,
    chaos_rate: float = 0.0,
    chaos_seed: int = 0,
    max_shed: Optional[int] = None,
    min_availability: Optional[float] = None,
    stream: bool = False,
    rekey_ratio: Optional[float] = None,
    cache_dir: Optional[str] = None,
    disk_mb: Optional[float] = None,
) -> int:
    from repro.errors import ReproError, ServiceOverloadError
    from repro.core.options import DiffOptions, validate_engine
    from repro.obs.metrics import MetricsRegistry
    from repro.service import (
        ChaosEngine,
        ChaosSchedule,
        DiffService,
        ResiliencePolicy,
        ResilientDiffService,
    )
    from repro.workloads.motion import generate_sequence

    resilient = resilient or deadline is not None or chaos_rate > 0
    clip = generate_sequence(height=height, width=width, n_frames=frames, seed=seed)
    registry = MetricsRegistry()
    options = DiffOptions(
        engine=validate_engine(engine),
        metrics=registry,
        cache_dir=cache_dir,
        disk_budget=(
            int(disk_mb * 1024 * 1024) if disk_mb is not None else None
        ),
    )
    cache_bytes = int(cache_mb * 1024 * 1024)
    print(
        f"clip: {frames} frames of {height}x{width}, {passes} pass(es), "
        f"engine {engine}, cache "
        + (f"{cache_mb:g} MiB" if cache_bytes > 0 else "disabled")
        + (f", persisted to {cache_dir}" if cache_dir is not None else "")
        + (", resilient" if resilient else "")
        + (f", chaos rate {chaos_rate:g} (seed {chaos_seed})" if chaos_rate else "")
    )
    chaos = (
        ChaosEngine(ChaosSchedule.bernoulli(seed=chaos_seed, rate=chaos_rate))
        if chaos_rate
        else None
    )
    if resilient:
        policy = ResiliencePolicy(deadline=deadline, max_retries=max_retries)
        service = ResilientDiffService(
            options,
            policy=policy,
            cache_bytes=cache_bytes,
            compute=chaos,
        )
    else:
        service = DiffService(options, cache_bytes=cache_bytes)
    total_pixels = served = failed = 0
    stream_stats = None
    with service:
        if stream:
            from repro.rle.ops2d import xor_images
            from repro.service import StreamingDiffService, StreamPolicy

            policy = (
                StreamPolicy(rekey_ratio=rekey_ratio)
                if rekey_ratio is not None
                else None
            )
            mismatches = 0
            with StreamingDiffService(
                service, policy=policy, metrics=registry
            ) as streams:
                sid = streams.open()
                decoded = None
                for _ in range(passes):
                    for frame in clip:
                        try:
                            fd = streams.append_frame(sid, frame)
                        except ServiceOverloadError:
                            failed += 1
                            continue
                        except ReproError as exc:
                            failed += 1
                            print(
                                f"  frame failed: {type(exc).__name__}: {exc}"
                            )
                            continue
                        served += 1
                        total_pixels += (
                            0 if fd.frame_index == 0 else fd.delta.pixel_count
                        )
                        decoded = (
                            fd.delta
                            if decoded is None
                            else xor_images(decoded, fd.delta)
                        )
                        if not decoded.same_pixels(frame):
                            mismatches += 1
                stream_stats = streams.close_session(sid)
            if mismatches:
                print(
                    f"ERROR: {mismatches} decoded frame(s) not byte-identical "
                    f"to the source clip"
                )
                return 1
        else:
            for _ in range(passes):
                for prev, cur in zip(clip, clip[1:]):
                    try:
                        total_pixels += service.diff_images(prev, cur).difference_pixels
                        served += 1
                    except ServiceOverloadError:
                        failed += 1  # shed by the breaker; already counted in stats
                    except ReproError as exc:
                        failed += 1
                        print(f"  pair failed: {type(exc).__name__}: {exc}")
        stats = service.stats()
    if stream and stream_stats is not None:
        print(
            f"stream: {int(stream_stats['frames'])} frames appended, "
            f"{int(stream_stats['rekeys'])} rekeys, "
            f"compression {stream_stats['compression_ratio']:.2f}x "
            f"({int(stream_stats['shipped_runs'])} shipped / "
            f"{int(stream_stats['raw_runs'])} raw runs); decoded frames "
            f"byte-identical"
        )
        print(f"served {served} frames ({int(stats['requests'])} row requests)")
    else:
        pairs = passes * max(frames - 1, 0)
        print(f"served {pairs} frame pairs ({int(stats['requests'])} row requests)")
    print(f"motion pixels flagged: {total_pixels}")
    print(
        f"cache: {int(stats.get('hits', 0))} hits / "
        f"{int(stats.get('misses', 0))} misses "
        f"(hit rate {stats['hit_rate']:.1%}), "
        f"{int(stats.get('entries', 0))} entries, "
        f"{int(stats.get('bytes', 0))} bytes, "
        f"{int(stats.get('evictions', 0))} evictions"
    )
    if cache_dir is not None:
        print(
            f"disk tier: {int(stats.get('disk_warm_entries', 0))} entries "
            f"warm at open, {int(stats.get('disk_hits', 0))} hits / "
            f"{int(stats.get('disk_misses', 0))} misses, "
            f"{int(stats.get('disk_entries', 0))} entries, "
            f"{int(stats.get('disk_bytes', 0))} bytes, "
            f"{int(stats.get('disk_quarantined', 0))} quarantined"
        )
    print(
        f"batching: {int(stats['batches'])} engine batches "
        f"({stats['requests'] / stats['batches']:.1f} requests/batch)"
        if stats["batches"]
        else "batching: no batches ran"
    )
    availability = served / (served + failed) if served + failed else 1.0
    if resilient:
        print(
            f"resilience: {served}/{served + failed} pairs served "
            f"({availability:.1%} availability), "
            f"{int(stats['resilience_retries'])} retries, "
            f"{int(stats['resilience_deadline_expirations'])} deadline "
            f"expirations, {int(stats['resilience_degraded_serves'])} "
            f"degraded serves, {int(stats['resilience_shed'])} shed, "
            f"breaker state {stats['breaker_state']:g} "
            f"({int(stats['breaker_transitions'])} transitions)"
        )
        if chaos is not None:
            injected = chaos.stats()
            calls = injected.pop("calls", 0)
            print(
                f"chaos: {sum(injected.values())} faults injected over "
                f"{calls} engine batches ({injected})"
            )
    if min_hit_rate is not None and stats["hit_rate"] < min_hit_rate:
        print(
            f"ERROR: hit rate {stats['hit_rate']:.1%} below required "
            f"{min_hit_rate:.1%}"
        )
        return 1
    if max_shed is not None and stats.get("resilience_shed", 0) > max_shed:
        print(
            f"ERROR: {int(stats['resilience_shed'])} requests shed, "
            f"more than the allowed {max_shed}"
        )
        return 1
    if min_availability is not None and availability < min_availability:
        print(
            f"ERROR: availability {availability:.1%} below required "
            f"{min_availability:.1%}"
        )
        return 1
    return 0


def _parse_listen(listen: str) -> Optional[tuple]:
    host, sep, port = listen.rpartition(":")
    if not sep or not port.isdigit():
        return None
    return (host or "127.0.0.1", int(port))


def _cmd_serve_sharded(
    height: int,
    width: int,
    frames: int,
    passes: int,
    seed: int,
    engine: str,
    cache_mb: float,
    min_hit_rate: Optional[float],
    workers: int,
    listen: Optional[str],
    selftest: bool,
    stream: bool = False,
    rekey_ratio: Optional[float] = None,
    cache_dir: Optional[str] = None,
    disk_mb: Optional[float] = None,
) -> int:
    from repro.core.options import DiffOptions, validate_engine
    from repro.rle.ops2d import xor_images
    from repro.service import (
        DiffService,
        ServerThread,
        ShardClient,
        ShardedDiffService,
        StreamPolicy,
    )
    from repro.workloads.motion import generate_sequence

    address = None
    if listen is not None:
        address = _parse_listen(listen)
        if address is None:
            print(f"error: --listen expects HOST:PORT, got {listen!r}")
            return 2
    if selftest and address is None:
        print("error: --selftest requires --listen")
        return 2

    clip = generate_sequence(height=height, width=width, n_frames=frames, seed=seed)
    options = DiffOptions(
        engine=validate_engine(engine),
        cache_dir=cache_dir,
        disk_budget=(
            int(disk_mb * 1024 * 1024) if disk_mb is not None else None
        ),
    )
    cache_bytes = int(cache_mb * 1024 * 1024)
    print(
        f"clip: {frames} frames of {height}x{width}, {passes} pass(es), "
        f"engine {engine}, cache "
        + (f"{cache_mb:g} MiB/worker" if cache_bytes > 0 else "disabled")
        + (
            f", persisted to {cache_dir} (per-worker partitions)"
            if cache_dir is not None
            else ""
        )
        + f", {workers} shard worker(s)"
    )
    with ShardedDiffService(
        options, workers=workers, cache_bytes=cache_bytes
    ) as service:
        service.ping()
        policy = (
            StreamPolicy(rekey_ratio=rekey_ratio)
            if rekey_ratio is not None
            else None
        )
        total_pixels = pairs_served = 0
        stream_stats = None
        if address is None:
            if stream:
                # no TCP: drive the session straight through the
                # sharded service (routed to one shard by session id)
                sid = service.stream_open(policy=policy)
                decoded = None
                for _ in range(passes):
                    for frame in clip:
                        fd = service.stream_frame(sid, frame)
                        pairs_served += 1
                        if fd.frame_index > 0:
                            total_pixels += fd.delta.pixel_count
                        decoded = (
                            fd.delta
                            if decoded is None
                            else xor_images(decoded, fd.delta)
                        )
                        if not decoded.same_pixels(frame):
                            print(
                                f"ERROR: decoded frame {fd.frame_index} is "
                                f"not byte-identical to the source"
                            )
                            return 1
                stream_stats = service.stream_close(sid)
            else:
                # no TCP: drive the clip straight through the sharded service
                for _ in range(passes):
                    for prev, cur in zip(clip, clip[1:]):
                        total_pixels += service.diff_images(prev, cur).difference_pixels
                        pairs_served += 1
        else:
            with ServerThread(service, host=address[0], port=address[1]) as server:
                print(f"listening on {server.host}:{server.port}")
                if not selftest:
                    import threading

                    try:
                        threading.Event().wait()  # serve until interrupted
                    except KeyboardInterrupt:
                        print("interrupted — shutting down")
                    return 0
                mismatches = 0
                with ShardClient(server.host, server.port) as client, DiffService(
                    options, cache_bytes=cache_bytes
                ) as reference:
                    if client.ping() != workers:
                        print("ERROR: ping did not reach every worker")
                        return 1
                    if stream:
                        sid = client.stream_open(
                            rekey_ratio=rekey_ratio,
                        )
                        decoded = None
                        for _ in range(passes):
                            for frame in clip:
                                fd = client.stream_frame(sid, frame)
                                pairs_served += 1
                                if fd.frame_index > 0:
                                    total_pixels += fd.delta.pixel_count
                                decoded = (
                                    fd.delta
                                    if decoded is None
                                    else xor_images(decoded, fd.delta)
                                )
                                if not decoded.same_pixels(frame):
                                    mismatches += 1
                        stream_stats = client.stream_close(sid)
                    else:
                        for _ in range(passes):
                            for prev, cur in zip(clip, clip[1:]):
                                remote = client.diff_rows(list(prev), list(cur))
                                local = reference.diff_images(prev, cur)
                                pairs_served += 1
                                total_pixels += local.difference_pixels
                                for r, l in zip(remote, local.row_results):
                                    if (
                                        r.result.to_pairs() != l.result.to_pairs()
                                        or r.iterations != l.iterations
                                        or r.stats.items() != l.stats.items()
                                    ):
                                        mismatches += 1
                    observability_error = _selftest_observability(
                        client, workers
                    )
                if mismatches:
                    print(
                        f"ERROR: {mismatches} "
                        + (
                            "decoded frame(s) not byte-identical to the "
                            "source clip"
                            if stream
                            else "row result(s) diverged from the "
                            "single-process DiffService"
                        )
                    )
                    return 1
                if observability_error is not None:
                    print(f"ERROR: {observability_error}")
                    return 1
                if stream:
                    if stream_stats is None or stream_stats.get("rekeys", 0) < 1:
                        print(
                            "ERROR: no adaptive keyframe rekey occurred on "
                            "the motion workload"
                        )
                        return 1
                    print(
                        f"selftest: {pairs_served} frames streamed over TCP, "
                        f"decoded byte-identical, "
                        f"{int(stream_stats['rekeys'])} rekeys, compression "
                        f"{stream_stats['compression_ratio']:.2f}x"
                    )
                else:
                    print(
                        f"selftest: {pairs_served} frame pairs round-tripped "
                        f"over TCP, byte-identical to the single-process "
                        f"service"
                    )
        stats = service.stats()
        merged = service.merged_snapshot()
        per_worker = service.worker_snapshots()
    folded = per_worker[0]
    for snapshot in per_worker[1:]:
        folded = folded.merge(snapshot)
    if folded != merged:
        print("ERROR: merged snapshot differs from the per-worker fold")
        return 1
    merged_requests = merged.counter_total("repro_service_requests_total")
    if merged_requests != stats["requests"]:
        print(
            f"ERROR: merged metrics report {merged_requests:g} requests, "
            f"stats report {stats['requests']:g}"
        )
        return 1
    if stream:
        print(
            f"served {pairs_served} frames ({int(stats['requests'])} row "
            f"requests)"
        )
        if stream_stats is not None:
            print(
                f"stream: {int(stream_stats['frames'])} frames appended, "
                f"{int(stream_stats['rekeys'])} rekeys, compression "
                f"{stream_stats['compression_ratio']:.2f}x "
                f"({int(stream_stats['shipped_runs'])} shipped / "
                f"{int(stream_stats['raw_runs'])} raw runs)"
            )
    else:
        print(
            f"served {pairs_served} frame pairs ({int(stats['requests'])} "
            f"row requests)"
        )
    print(f"motion pixels flagged: {total_pixels}")
    print(
        f"cache (all shards): {int(stats.get('hits', 0))} hits / "
        f"{int(stats.get('misses', 0))} misses "
        f"(hit rate {stats['hit_rate']:.1%}), "
        f"{int(stats.get('entries', 0))} entries"
    )
    print(
        f"merged metrics: {merged_requests:g} requests across "
        f"{int(stats['workers'])} workers — consistent with stats"
    )
    if min_hit_rate is not None and stats["hit_rate"] < min_hit_rate:
        print(
            f"ERROR: hit rate {stats['hit_rate']:.1%} below required "
            f"{min_hit_rate:.1%}"
        )
        return 1
    return 0


def _selftest_observability(client, workers: int) -> Optional[str]:
    """The selftest's distributed-observability gate, run over the same
    TCP client that drove the clip: health, one stitched cross-process
    trace, and schema-valid structured logs.  Returns an error message
    or ``None``."""
    from repro.errors import ObservabilityError
    from repro.obs.schema import validate_chrome_trace, validate_log_record

    health = client.health()
    if health["status"] != "healthy" or health["workers_alive"] != workers:
        return (
            f"health reports {health['status']!r} with "
            f"{health['workers_alive']:g}/{workers} workers alive"
        )
    request_id = client.last_request_id
    if not request_id:
        return "diff_rows response carried no request_id"
    trace = client.trace(request_id)
    try:
        validate_chrome_trace(trace)
    except ObservabilityError as exc:
        return f"stitched trace failed schema validation: {exc}"
    lanes = {event["tid"] for event in trace["traceEvents"]}
    if len(lanes) < 2:
        return (
            f"trace for request {request_id} spans {len(lanes)} process "
            f"lane(s); expected the front-end plus at least one worker"
        )
    logs = client.logs()
    try:
        for record in logs:
            validate_log_record(record)
    except ObservabilityError as exc:
        return f"structured log failed schema validation: {exc}"
    if not any(record["request_id"] == request_id for record in logs):
        return f"no structured log event carries request id {request_id}"
    print(
        f"selftest: request {request_id} traced across {len(lanes)} "
        f"process lanes, {len(logs)} schema-valid log events, "
        f"p99 {health['latency_p99'] * 1000:.2f} ms"
    )
    return None


def _cmd_top(address_arg: str, interval: float, samples: int) -> int:
    import time as _time

    from repro.service import ShardClient

    address = _parse_listen(address_arg)
    if address is None:
        print(f"error: expected HOST:PORT, got {address_arg!r}")
        return 2
    header = (
        f"{'status':>9} {'alive':>7} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'slo!':>6} {'req':>8} {'hit%':>6} {'logs':>6} {'traces':>7}"
    )
    with ShardClient(address[0], address[1]) as client:
        print(header)
        taken = 0
        try:
            while True:
                health = client.health()
                stats = client.stats()
                alive = f"{int(health['workers_alive'])}/{int(health['workers'])}"
                print(
                    f"{health['status']:>9} {alive:>7} "
                    f"{stats['latency_p50'] * 1000:>8.2f} "
                    f"{stats['latency_p99'] * 1000:>8.2f} "
                    f"{int(stats['slo_breaches']):>6} "
                    f"{int(stats.get('requests', 0)):>8} "
                    f"{stats['hit_rate'] * 100:>6.1f} "
                    f"{int(health['log_records']):>6} "
                    f"{int(health['traces_stored']):>7}",
                    flush=True,
                )
                taken += 1
                if samples > 0 and taken >= samples:
                    break
                _time.sleep(interval)
        except KeyboardInterrupt:
            pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "figure5":
        return _cmd_figure5(args.width, args.reps, args.csv)
    if args.command == "table1":
        return _cmd_table1(args.reps, args.csv)
    if args.command == "ablation":
        return _cmd_ablation(args.which, args.reps)
    if args.command == "inspect":
        return _cmd_inspect(args.seed, args.defects, args.size)
    if args.command == "verify":
        return _cmd_verify(args.seed, args.width, args.inject_fault)
    if args.command == "theory":
        return _cmd_theory(args.width, args.reps)
    if args.command == "rtl":
        return _cmd_rtl(args.what)
    if args.command == "bench-engines":
        return _cmd_bench_engines(
            args.rows, args.width, args.error_fraction, args.seed, args.engines
        )
    if args.command == "profile":
        return _cmd_profile(
            args.rows,
            args.width,
            args.error_fraction,
            args.seed,
            args.out_dir,
            args.validate,
        )
    if args.command == "serve":
        if args.workers:
            if args.resilient or args.deadline is not None or args.chaos_rate:
                # workers already serve through ResilientDiffService;
                # chaos hooks are in-process only
                print(
                    "error: --workers is incompatible with --resilient/"
                    "--deadline/--chaos-rate (each shard worker already "
                    "serves through ResilientDiffService; chaos injection "
                    "is in-process only)"
                )
                return 2
            return _cmd_serve_sharded(
                args.height,
                args.width,
                args.frames,
                args.passes,
                args.seed,
                args.engine,
                args.cache_mb,
                args.min_hit_rate,
                args.workers,
                args.listen,
                args.selftest,
                args.stream,
                args.rekey_ratio,
                args.cache_dir,
                args.disk_mb,
            )
        if args.listen is not None or args.selftest:
            print("error: --listen/--selftest require --workers N (N >= 1)")
            return 2
        return _cmd_serve(
            args.height,
            args.width,
            args.frames,
            args.passes,
            args.seed,
            args.engine,
            args.cache_mb,
            args.min_hit_rate,
            args.resilient,
            args.deadline,
            args.max_retries,
            args.chaos_rate,
            args.chaos_seed,
            args.max_shed,
            args.min_availability,
            args.stream,
            args.rekey_ratio,
            args.cache_dir,
            args.disk_mb,
        )
    if args.command == "top":
        return _cmd_top(args.address, args.interval, args.samples)
    if args.command == "lint":
        from repro.analysis.lint.cli import run as run_lint

        return run_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
